//! Directory keys, including the distinguished `LOW` and `HIGH` sentinels.
//!
//! The paper (§3.1) requires every directory representative to contain two
//! distinguished keys, `LOW` and `HIGH`, such that `LOW` is less than any
//! insertable key and `HIGH` is greater than any insertable key. They ensure
//! every key has a *real predecessor* and *real successor*, which simplifies
//! [`DirSuiteDelete`](crate::suite::DirSuite::delete).

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An application-supplied directory key: an arbitrary byte string ordered
/// lexicographically.
///
/// `UserKey` is cheap to clone (the bytes are reference-counted) because the
/// suite algorithm passes keys between quorum members frequently.
///
/// # Examples
///
/// ```
/// use repdir_core::UserKey;
///
/// let a = UserKey::from("alpha");
/// let b = UserKey::from("beta");
/// assert!(a < b);
/// assert_eq!(a.as_bytes(), b"alpha");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserKey(Arc<[u8]>);

impl UserKey {
    /// Creates a key from raw bytes.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Self {
        UserKey(bytes.into())
    }

    /// Creates a key whose lexicographic order matches the numeric order of
    /// `n` (big-endian, fixed width). Useful for uniformly distributed
    /// simulation keys.
    ///
    /// ```
    /// use repdir_core::UserKey;
    /// assert!(UserKey::from_u64(3) < UserKey::from_u64(200));
    /// ```
    pub fn from_u64(n: u64) -> Self {
        UserKey(Arc::from(n.to_be_bytes().as_slice()))
    }

    /// Returns the raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty (the empty byte string is a valid key).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for UserKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "k{s:?}"),
            _ => {
                write!(f, "k0x")?;
                for b in self.0.iter() {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for UserKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => f.write_str(s),
            _ => {
                for b in self.0.iter() {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl From<&str> for UserKey {
    fn from(s: &str) -> Self {
        UserKey(Arc::from(s.as_bytes()))
    }
}

impl From<String> for UserKey {
    fn from(s: String) -> Self {
        UserKey(Arc::from(s.into_bytes().into_boxed_slice()))
    }
}

impl From<&[u8]> for UserKey {
    fn from(b: &[u8]) -> Self {
        UserKey(Arc::from(b))
    }
}

impl From<Vec<u8>> for UserKey {
    fn from(b: Vec<u8>) -> Self {
        UserKey(Arc::from(b.into_boxed_slice()))
    }
}

impl AsRef<[u8]> for UserKey {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for UserKey {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

/// A directory key extended with the `LOW` and `HIGH` sentinels.
///
/// The total order is `Key::Low < Key::User(_) < Key::High`, with user keys
/// ordered lexicographically on their bytes.
///
/// Sentinels are *conceptually present* in every representative with version
/// [`Version::ZERO`](crate::Version::ZERO): looking one up reports "present"
/// so that the real-predecessor/real-successor search of the paper's Fig. 12
/// terminates at the edge of the key space.
///
/// # Examples
///
/// ```
/// use repdir_core::Key;
///
/// let k = Key::from("m");
/// assert!(Key::Low < k);
/// assert!(k < Key::High);
/// assert!(k.is_user());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Key {
    /// The distinguished key smaller than every user key.
    #[default]
    Low,
    /// An ordinary application key.
    User(UserKey),
    /// The distinguished key larger than every user key.
    High,
}

impl Key {
    /// Returns `true` for [`Key::Low`] and [`Key::High`].
    pub fn is_sentinel(&self) -> bool {
        matches!(self, Key::Low | Key::High)
    }

    /// Returns `true` for ordinary (non-sentinel) keys.
    pub fn is_user(&self) -> bool {
        matches!(self, Key::User(_))
    }

    /// Returns the inner user key, or `None` for a sentinel.
    pub fn as_user(&self) -> Option<&UserKey> {
        match self {
            Key::User(u) => Some(u),
            _ => None,
        }
    }

    /// Consumes the key and returns the inner user key, or `None` for a
    /// sentinel.
    pub fn into_user(self) -> Option<UserKey> {
        match self {
            Key::User(u) => Some(u),
            _ => None,
        }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Low => f.write_str("LOW"),
            Key::User(u) => write!(f, "{u:?}"),
            Key::High => f.write_str("HIGH"),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Low => f.write_str("LOW"),
            Key::User(u) => write!(f, "{u}"),
            Key::High => f.write_str("HIGH"),
        }
    }
}

impl From<UserKey> for Key {
    fn from(u: UserKey) -> Self {
        Key::User(u)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::User(UserKey::from(s))
    }
}

impl From<u64> for Key {
    fn from(n: u64) -> Self {
        Key::User(UserKey::from_u64(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_key_orders_lexicographically() {
        let a = UserKey::from("a");
        let ab = UserKey::from("ab");
        let b = UserKey::from("b");
        assert!(a < ab);
        assert!(ab < b);
        assert_eq!(a, UserKey::from("a"));
    }

    #[test]
    fn from_u64_preserves_numeric_order() {
        let mut prev = UserKey::from_u64(0);
        for n in [1u64, 2, 9, 255, 256, 1 << 20, u64::MAX] {
            let k = UserKey::from_u64(n);
            assert!(prev < k, "{prev:?} !< {k:?}");
            prev = k;
        }
    }

    #[test]
    fn sentinels_bracket_all_user_keys() {
        for s in ["", "a", "zzzz", "\u{10FFFF}"] {
            let k = Key::from(s);
            assert!(Key::Low < k, "LOW !< {k:?}");
            assert!(k < Key::High, "{k:?} !< HIGH");
        }
        assert!(Key::Low < Key::High);
    }

    #[test]
    fn sentinel_predicates() {
        assert!(Key::Low.is_sentinel());
        assert!(Key::High.is_sentinel());
        assert!(!Key::from("x").is_sentinel());
        assert!(Key::from("x").is_user());
        assert_eq!(Key::from("x").as_user(), Some(&UserKey::from("x")));
        assert_eq!(Key::Low.as_user(), None);
        assert_eq!(Key::from("x").into_user(), Some(UserKey::from("x")));
        assert_eq!(Key::High.into_user(), None);
    }

    #[test]
    fn debug_formats_are_nonempty_and_distinct() {
        let low = format!("{:?}", Key::Low);
        let high = format!("{:?}", Key::High);
        let user = format!("{:?}", Key::from("q"));
        assert_eq!(low, "LOW");
        assert_eq!(high, "HIGH");
        assert!(user.contains('q'));
        let bin = format!("{:?}", Key::User(UserKey::new(vec![0u8, 1, 255])));
        assert!(bin.contains("0x"), "{bin}");
    }

    #[test]
    fn empty_user_key_is_still_above_low() {
        let empty = Key::from("");
        assert!(Key::Low < empty);
        assert!(empty < Key::from("\0"));
        assert!(UserKey::from("").is_empty());
        assert_eq!(UserKey::from("ab").len(), 2);
    }

    #[test]
    fn display_round_trip_for_text_keys() {
        assert_eq!(Key::from("hello").to_string(), "hello");
        assert_eq!(Key::Low.to_string(), "LOW");
        assert_eq!(Key::High.to_string(), "HIGH");
        assert_eq!(UserKey::new(vec![0xff, 0xfe]).to_string(), "fffe");
    }

    #[test]
    fn default_key_is_low_and_default_user_key_is_empty() {
        assert_eq!(Key::default(), Key::Low);
        assert_eq!(UserKey::default(), UserKey::from(""));
    }
}
