//! An in-tree multi-producer channel with `crossbeam-channel`-style naming.
//!
//! Thin wrappers over [`std::sync::mpsc`] providing the subset the network
//! fabric needs: [`unbounded`] construction, cloneable [`Sender`]s, and a
//! [`Receiver`] with blocking, timed, and non-blocking receives. Keeping the
//! types in-tree lets the workspace build fully offline and keeps the error
//! vocabulary under our control.

use std::sync::mpsc;
use std::time::Duration;

/// Creates an unbounded FIFO channel.
///
/// # Examples
///
/// ```
/// use repdir_core::channel::unbounded;
/// use std::time::Duration;
///
/// let (tx, rx) = unbounded();
/// tx.send(7).unwrap();
/// assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
/// ```
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// The sending half of a channel. Cloneable; dropping every sender
/// disconnects the channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message. Fails only if the receiver was dropped, handing
    /// the message back.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value).map_err(|e| SendError(e.0))
    }
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Blocks until a message arrives, every sender is dropped, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Drains every message currently queued, without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Ok(v) = self.try_recv() {
            out.push(v);
        }
        out
    }
}

/// The receiver was dropped; the unsent message is returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Every sender was dropped and the queue is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why a timed receive returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Why a non-blocking receive returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was queued.
    Empty,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel is empty"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn fifo_delivery() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cloned_senders_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h1 = thread::spawn(move || {
            for _ in 0..500 {
                tx.send(1u32).unwrap();
            }
        });
        let h2 = thread::spawn(move || {
            for _ in 0..500 {
                tx2.send(1u32).unwrap();
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
        let total: u32 = rx.drain().iter().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn recv_timeout_expires_when_empty() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(tx);
    }

    #[test]
    fn recv_timeout_delivers_before_expiry() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_reports_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_receiver_drop_returns_message() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(41), Err(SendError(41)));
    }
}
