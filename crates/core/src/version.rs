//! Version numbers.
//!
//! Every key — whether it has an entry or lies in a gap — is associated with
//! a version number on each representative. The paper notes (§5) that "for
//! some applications, version numbers containing 48 or more bits may be
//! required to prevent version numbers from cycling"; we use 64 bits and
//! treat overflow as a programming error.

use std::fmt;

/// A monotonically increasing version number associated with a key range.
///
/// # Examples
///
/// ```
/// use repdir_core::Version;
///
/// let v = Version::ZERO;
/// assert_eq!(v.next(), Version::new(1));
/// assert!(v < v.next());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(u64);

impl Version {
    /// The lowest version number (`LowestVersion` in the paper's pseudocode).
    /// Freshly created directories assign it to the initial `(LOW, HIGH)` gap,
    /// and the sentinels themselves always report it.
    pub const ZERO: Version = Version(0);

    /// The largest representable version number.
    pub const MAX: Version = Version(u64::MAX);

    /// Creates a version from a raw counter value.
    pub const fn new(v: u64) -> Self {
        Version(v)
    }

    /// Returns the raw counter value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the successor version.
    ///
    /// # Panics
    ///
    /// Panics on overflow; with 64-bit counters this is unreachable in
    /// practice (the paper's 48-bit recommendation exists for the same
    /// reason).
    #[must_use]
    pub fn next(self) -> Self {
        Version(self.0.checked_add(1).expect("version counter overflow"))
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Version) -> Version {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Version {
    fn from(v: u64) -> Self {
        Version(v)
    }
}

impl From<Version> for u64 {
    fn from(v: Version) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_lowest() {
        assert_eq!(Version::ZERO, Version::new(0));
        assert!(Version::ZERO < Version::new(1));
        assert_eq!(Version::default(), Version::ZERO);
    }

    #[test]
    fn next_increments() {
        assert_eq!(Version::new(41).next(), Version::new(42));
        assert_eq!(Version::ZERO.next().next().get(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn next_panics_on_overflow() {
        let _ = Version::MAX.next();
    }

    #[test]
    fn max_picks_larger() {
        assert_eq!(Version::new(3).max(Version::new(7)), Version::new(7));
        assert_eq!(Version::new(9).max(Version::new(7)), Version::new(9));
        assert_eq!(Version::new(5).max(Version::new(5)), Version::new(5));
    }

    #[test]
    fn conversions_round_trip() {
        let v = Version::from(123u64);
        assert_eq!(u64::from(v), 123);
        assert_eq!(format!("{v:?}"), "v123");
        assert_eq!(v.to_string(), "123");
    }
}
