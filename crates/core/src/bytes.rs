//! In-tree `Buf`/`BufMut`-style byte cursors.
//!
//! The wire codec and write-ahead log hand-roll little-endian,
//! length-prefixed framing. They need only a reading cursor over `&[u8]`
//! and appending writes into `Vec<u8>`, so rather than pulling in the
//! `bytes` crate we define the two traits with exactly that surface.
//!
//! Reads are *checked by convention*: callers test [`Buf::remaining`] before
//! each `get_*` (both the codec and the WAL decoder do), and the accessors
//! panic on underflow just like their `bytes` namesakes.

/// A cursor for reading little-endian scalars off a byte slice.
///
/// Implemented for `&[u8]`: each read advances the slice in place.
///
/// # Examples
///
/// ```
/// use repdir_core::bytes::{Buf, BufMut};
///
/// let mut out = Vec::new();
/// out.put_u8(7);
/// out.put_u32_le(300);
/// let mut cursor: &[u8] = &out;
/// assert_eq!(cursor.get_u8(), 7);
/// assert_eq!(cursor.get_u32_le(), 300);
/// assert_eq!(cursor.remaining(), 0);
/// ```
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().expect("2 bytes"));
        *self = &self[2..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        *self = &self[4..];
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        *self = &self[8..];
        v
    }
}

/// An appending writer of little-endian scalars.
///
/// Implemented for `Vec<u8>`, which grows as needed.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut b = Vec::new();
        b.put_u8(0xAB);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);

        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 3);
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn little_endian_layout_matches_spec() {
        let mut b = Vec::new();
        b.put_u32_le(1);
        assert_eq!(b, vec![1, 0, 0, 0]);
        b.clear();
        b.put_u64_le(0x0102_0304_0506_0708);
        assert_eq!(b, vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn advance_moves_the_window() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        r.advance(3);
    }

    #[test]
    #[should_panic]
    fn get_underflow_panics() {
        let mut r: &[u8] = &[1, 2, 3];
        let _ = r.get_u32_le();
    }
}
