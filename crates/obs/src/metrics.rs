//! Shared atomic metric primitives: counters, fixed-bucket latency
//! histograms, and reply-time EWMAs. Every handle is a cheap `Arc` clone of
//! the underlying atomics, so instrumented code resolves a name once and
//! records lock-free afterwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing event counter. Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and `reset_message_counts`-style views).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Overwrites the value — turns the counter into a gauge for
    /// level-style readings (e.g. a driver's current backoff interval).
    /// Monotone counters never call this.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: upper bounds 1, 2, 4, … 2²⁰ microseconds
/// (≈1.05 s), plus one overflow bucket.
pub const BUCKET_COUNT: usize = 22;

/// Upper bound (inclusive, in microseconds) of bucket `i`; the final bucket
/// catches everything larger.
pub(crate) fn bucket_bound_us(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        1u64 << i
    }
}

fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        // Smallest i with us <= 2^i.
        let i = (64 - (us - 1).leading_zeros()) as usize;
        i.min(BUCKET_COUNT - 1)
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// A fixed-bucket latency histogram over power-of-two microsecond bounds.
/// Recording is two relaxed adds and a store-free bucket increment; reads
/// are approximate (buckets are not sampled atomically as a set), which is
/// fine for monitoring and for the quantile gates in the benches.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a duration.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Records a sample in microseconds.
    pub fn record_us(&self, us: u64) {
        self.0.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.0.sum_us.load(Ordering::Relaxed)
    }

    /// Mean sample, microseconds (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        match self.count() {
            0 => None,
            n => Some(self.sum_us() as f64 / n as f64),
        }
    }

    /// Approximate quantile (`0.0 ..= 1.0`): the upper bound of the bucket
    /// holding the q-th sample, so the estimate errs high by at most one
    /// power of two. `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let snap = self.snapshot();
        let total = snap.count;
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in snap.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound_us(i));
            }
        }
        Some(bucket_bound_us(BUCKET_COUNT - 1))
    }

    /// A point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_us: self.sum_us(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`Histogram`], diffable for tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples, microseconds.
    pub sum_us: u64,
    /// Per-bucket sample counts (see [`BUCKET_COUNT`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Bucket-wise `self - earlier` (saturating), for windowed assertions.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// Number of outcomes after which an [`Avail`] window halves both counters,
/// so old outcomes decay geometrically instead of dominating forever.
pub const AVAIL_WINDOW: u64 = 64;

/// A windowed success-rate tracker: `successes / total` over roughly the
/// last [`AVAIL_WINDOW`] outcomes. Both counts live packed in one atomic
/// (successes in the high 32 bits, total in the low 32), updated by CAS so
/// concurrent recorders never lock; when the window fills, both halve,
/// giving an exponential decay with the same flavor as [`Ewma`] but over
/// boolean outcomes.
#[derive(Clone, Debug, Default)]
pub struct Avail(Arc<AtomicU64>);

fn avail_pack(successes: u64, total: u64) -> u64 {
    (successes << 32) | total
}

fn avail_unpack(packed: u64) -> (u64, u64) {
    (packed >> 32, packed & 0xFFFF_FFFF)
}

impl Avail {
    /// A fresh tracker with no outcomes recorded.
    pub fn new() -> Self {
        Avail::default()
    }

    /// Records one ping/RPC outcome.
    pub fn record(&self, ok: bool) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let (mut successes, mut total) = avail_unpack(cur);
            if total >= AVAIL_WINDOW {
                successes /= 2;
                total /= 2;
            }
            successes += ok as u64;
            total += 1;
            match self.0.compare_exchange_weak(
                cur,
                avail_pack(successes, total),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// The windowed success rate in `0.0 ..= 1.0`; `None` before the first
    /// outcome.
    pub fn rate(&self) -> Option<f64> {
        let (successes, total) = avail_unpack(self.0.load(Ordering::Relaxed));
        match total {
            0 => None,
            t => Some(successes as f64 / t as f64),
        }
    }

    /// How many outcomes the current window holds (saturates at
    /// [`AVAIL_WINDOW`]).
    pub fn samples(&self) -> u64 {
        avail_unpack(self.0.load(Ordering::Relaxed)).1
    }

    /// Forgets all outcomes.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Sentinel bit pattern for "no sample yet" (a NaN, never produced by
/// recording non-negative samples).
const EWMA_EMPTY: u64 = u64::MAX;

#[derive(Debug)]
struct EwmaInner {
    bits: AtomicU64,
    alpha: f64,
}

/// An exponentially weighted moving average of latency samples
/// (microseconds), stored as `f64` bits in one atomic so concurrent
/// recorders never lock. The first sample seeds the average; each later
/// sample `x` moves it to `alpha * x + (1 - alpha) * avg`.
#[derive(Clone, Debug)]
pub struct Ewma(Arc<EwmaInner>);

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new(0.3)
    }
}

impl Ewma {
    /// A fresh EWMA with the given smoothing factor (`0 < alpha <= 1`;
    /// larger alpha forgets faster).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma(Arc::new(EwmaInner {
            bits: AtomicU64::new(EWMA_EMPTY),
            alpha,
        }))
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.0.alpha
    }

    /// Records a duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as f64);
    }

    /// Records a sample in microseconds.
    pub fn record_us(&self, x: f64) {
        let mut cur = self.0.bits.load(Ordering::Relaxed);
        loop {
            let next = if cur == EWMA_EMPTY {
                x
            } else {
                self.0.alpha * x + (1.0 - self.0.alpha) * f64::from_bits(cur)
            };
            match self.0.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Current average in microseconds; `None` before the first sample.
    pub fn value_us(&self) -> Option<f64> {
        match self.0.bits.load(Ordering::Relaxed) {
            EWMA_EMPTY => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Forgets all samples.
    pub fn reset(&self) {
        self.0.bits.store(EWMA_EMPTY, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shared_across_clones() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_powers_of_two() {
        // Each (sample, bucket) pair pins the boundary rule: bucket i holds
        // samples in (2^(i-1), 2^i], bucket 0 holds 0..=1.
        let cases = [
            (0u64, 0usize),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (1024, 10),
            (1025, 11),
            (1 << 20, 20),
            ((1 << 20) + 1, 21),
            (u64::MAX, 21),
        ];
        for &(us, want) in &cases {
            assert_eq!(bucket_index(us), want, "sample {us}us");
            let h = Histogram::new();
            h.record_us(us);
            let snap = h.snapshot();
            assert_eq!(snap.buckets[want], 1, "sample {us}us lands in {want}");
            assert_eq!(snap.count, 1);
        }
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
        for us in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 3000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum_us(), 900 + 3000);
        // p50 of nine 100us samples and one 3000us: the 100us bucket's
        // upper bound (128).
        assert_eq!(h.quantile_us(0.5), Some(128));
        // p99 rounds up into the outlier's bucket (3000 <= 4096).
        assert_eq!(h.quantile_us(0.99), Some(4096));
        assert!((h.mean_us().unwrap() - 390.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_snapshot_diff_windows() {
        let h = Histogram::new();
        h.record_us(10);
        let before = h.snapshot();
        h.record_us(10);
        h.record_us(2000);
        let delta = h.snapshot().diff(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_us, 2010);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn avail_tracks_windowed_success_rate() {
        let a = Avail::new();
        assert_eq!(a.rate(), None);
        a.record(true);
        assert_eq!(a.rate(), Some(1.0));
        a.record(false);
        assert_eq!(a.rate(), Some(0.5));
        for _ in 0..6 {
            a.record(true);
        }
        assert_eq!(a.rate(), Some(7.0 / 8.0));
        a.reset();
        assert_eq!(a.rate(), None);
        assert_eq!(a.samples(), 0);
    }

    #[test]
    fn avail_window_halves_so_history_decays() {
        let a = Avail::new();
        for _ in 0..AVAIL_WINDOW {
            a.record(false);
        }
        assert_eq!(a.rate(), Some(0.0));
        assert_eq!(a.samples(), AVAIL_WINDOW);
        // Window is full: the next outcome halves the history, so a run of
        // successes pulls the rate up far faster than 1/(total) would.
        for _ in 0..AVAIL_WINDOW {
            a.record(true);
        }
        assert!(a.rate().unwrap() > 0.6, "rate {:?}", a.rate());
        assert!(a.samples() <= AVAIL_WINDOW);
    }

    #[test]
    fn avail_wraparound_reflects_only_the_trailing_window() {
        // Push the ring far past one window length in both directions: the
        // estimate must track the trailing outcomes and shed the old regime
        // geometrically, never averaging over the full history (a plain
        // success/total ratio over 4 windows would sit near 0.75 here).
        let a = Avail::new();
        for _ in 0..AVAIL_WINDOW {
            a.record(false);
        }
        for _ in 0..3 * AVAIL_WINDOW {
            a.record(true);
        }
        assert!(
            a.rate().unwrap() > 0.95,
            "3 windows of successes should dominate: {:?}",
            a.rate()
        );
        assert!(a.samples() <= AVAIL_WINDOW, "window stays bounded");
        // And back down: the success era decays just as fast.
        for _ in 0..3 * AVAIL_WINDOW {
            a.record(false);
        }
        assert!(
            a.rate().unwrap() < 0.05,
            "3 windows of failures should dominate: {:?}",
            a.rate()
        );
        assert!(a.samples() <= AVAIL_WINDOW);
    }

    #[test]
    fn avail_concurrent_recording_loses_nothing() {
        let a = Avail::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = a.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        a.record(true);
                    }
                });
            }
        });
        // All outcomes are successes: whatever halving happened, the rate
        // must be exactly 1.
        assert_eq!(a.rate(), Some(1.0));
    }

    #[test]
    fn ewma_first_sample_seeds_then_decays() {
        let e = Ewma::new(0.5);
        assert_eq!(e.value_us(), None);
        e.record_us(100.0);
        assert_eq!(e.value_us(), Some(100.0));
        e.record_us(200.0);
        assert_eq!(e.value_us(), Some(150.0));
        e.record_us(200.0);
        assert_eq!(e.value_us(), Some(175.0));
        e.reset();
        assert_eq!(e.value_us(), None);
    }

    #[test]
    fn ewma_decays_toward_new_level_geometrically() {
        // After k samples at a new level L, the distance to L shrinks by
        // (1-alpha)^k — the defining property of exponential decay.
        let e = Ewma::new(0.3);
        e.record_us(1000.0);
        for _ in 0..20 {
            e.record_us(0.0);
        }
        let want = 1000.0 * (0.7f64).powi(20);
        assert!((e.value_us().unwrap() - want).abs() < 1e-6);
    }

    #[test]
    fn ewma_concurrent_recording_stays_in_range() {
        let e = Ewma::new(0.2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        e.record_us(50.0);
                    }
                });
            }
        });
        // Every sample is 50, so the average must converge to exactly 50
        // regardless of interleaving.
        assert!((e.value_us().unwrap() - 50.0).abs() < 1e-9);
    }
}
