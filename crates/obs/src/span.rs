//! The span ring buffer: a fixed-capacity, lock-free-ish trace of scoped
//! timer events.
//!
//! Writers claim a position with one `fetch_add` on a global sequence
//! number, then take the slot with a seqlock-style CAS (odd version = write
//! in progress) and publish their fields. A writer that finds its slot held
//! by a straggler a full ring behind *drops* its event instead of blocking —
//! tracing is best-effort by design; the metrics counters are the exact
//! record. Readers ([`SpanRing::events`]) re-check the slot version after
//! reading and skip anything torn, so every event returned is internally
//! consistent.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Tag value meaning "no tag".
pub(crate) const NO_TAG: u64 = u64::MAX;

#[derive(Default)]
struct Slot {
    /// Seqlock version: even = stable, odd = write in progress. Starts 0.
    ver: AtomicU64,
    /// 1-based global sequence number of the event stored here; 0 = never
    /// written.
    seq: AtomicU64,
    name_id: AtomicU64,
    tag: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

struct RingInner {
    slots: Vec<Slot>,
    next: AtomicU64,
    dropped: AtomicU64,
    names: RwLock<Vec<String>>,
}

/// A shared handle to the ring. Cloning is an `Arc` clone.
#[derive(Clone)]
pub struct SpanRing(Arc<RingInner>);

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.0.slots.len())
            .field("recorded", &self.0.next.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// A ring retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring capacity must be positive");
        SpanRing(Arc::new(RingInner {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            names: RwLock::new(Vec::new()),
        }))
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.0.slots.len()
    }

    /// Total events ever recorded (monotonic, not capped at capacity).
    pub fn recorded(&self) -> u64 {
        self.0.next.load(Ordering::Relaxed)
    }

    /// Events dropped because their slot was held by a concurrent writer
    /// (requires a writer lagging a full ring behind — effectively zero at
    /// real capacities).
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Interns a span name, returning a stable id. Called once per
    /// instrumentation site (span guards cache the id), so the write lock
    /// here is off the hot path.
    pub fn intern(&self, name: &str) -> u64 {
        {
            let names = self.0.names.read().expect("span name lock");
            if let Some(id) = names.iter().position(|n| n == name) {
                return id as u64;
            }
        }
        let mut names = self.0.names.write().expect("span name lock");
        if let Some(id) = names.iter().position(|n| n == name) {
            return id as u64;
        }
        names.push(name.to_string());
        (names.len() - 1) as u64
    }

    /// Records one finished span. `tag` is [`NO_TAG`] for untagged spans.
    pub(crate) fn push(&self, name_id: u64, tag: u64, start_ns: u64, dur_ns: u64) {
        let seq = self.0.next.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.0.slots[((seq - 1) % self.0.slots.len() as u64) as usize];
        let ver = slot.ver.load(Ordering::Relaxed);
        if ver & 1 == 1
            || slot
                .ver
                .compare_exchange(ver, ver + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // Another writer holds this slot (it must be a full ring behind
            // or ahead of us). Never block the instrumented path: drop.
            self.0.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.seq.store(seq, Ordering::Relaxed);
        slot.name_id.store(name_id, Ordering::Relaxed);
        slot.tag.store(tag, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.ver.store(ver + 2, Ordering::Release);
    }

    /// The retained events in recording order (oldest first). Slots caught
    /// mid-overwrite are skipped, so every returned event is consistent.
    pub fn events(&self) -> Vec<SpanEvent> {
        let names = self.0.names.read().expect("span name lock");
        let mut out = Vec::new();
        for slot in &self.0.slots {
            let v1 = slot.ver.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                continue; // write in progress
            }
            let seq = slot.seq.load(Ordering::Relaxed);
            let name_id = slot.name_id.load(Ordering::Relaxed);
            let tag = slot.tag.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.ver.load(Ordering::Relaxed) != v1 || seq == 0 {
                continue; // overwritten while reading (or never written)
            }
            let Some(name) = names.get(name_id as usize) else {
                continue;
            };
            out.push(SpanEvent {
                seq,
                name: name.clone(),
                tag: (tag != NO_TAG).then_some(tag),
                start_ns,
                dur_ns,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// One finished scoped timer, as read back from the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// 1-based global sequence number (total order of span completion).
    pub seq: u64,
    /// The span name (e.g. `"quorum.collect"`).
    pub name: String,
    /// Optional tag — by convention the member index for per-member spans.
    pub tag: Option<u64>,
    /// Start time, nanoseconds since the owning registry's epoch
    /// (monotonic clock).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// RAII scoped timer returned by [`Registry::span`](crate::Registry::span);
/// records into the ring (and the same-named histogram) on drop. A disarmed
/// registry returns an inert guard that skips the clock entirely.
pub struct SpanGuard {
    pub(crate) armed: Option<ArmedSpan>,
}

pub(crate) struct ArmedSpan {
    pub(crate) ring: SpanRing,
    pub(crate) hist: crate::Histogram,
    pub(crate) name_id: u64,
    pub(crate) tag: u64,
    pub(crate) start: std::time::Instant,
    pub(crate) start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(arm) = self.armed.take() {
            let dur = arm.start.elapsed();
            arm.ring
                .push(arm.name_id, arm.tag, arm.start_ns, dur.as_nanos() as u64);
            arm.hist.record(dur);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("armed", &self.armed.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_most_recent_events_after_wraparound() {
        let ring = SpanRing::new(4);
        let id = ring.intern("t");
        for i in 0..10u64 {
            ring.push(id, NO_TAG, i, i);
        }
        let events = ring.events();
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0, "single writer never contends");
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest six were overwritten");
    }

    #[test]
    fn intern_is_idempotent_and_ids_are_stable() {
        let ring = SpanRing::new(2);
        let a = ring.intern("alpha");
        let b = ring.intern("beta");
        assert_ne!(a, b);
        assert_eq!(ring.intern("alpha"), a);
        ring.push(b, 7, 1, 2);
        let ev = &ring.events()[0];
        assert_eq!(ev.name, "beta");
        assert_eq!(ev.tag, Some(7));
    }

    #[test]
    fn wraparound_under_concurrent_writers_yields_consistent_events() {
        // Many writers hammer a tiny ring while a reader snapshots it: every
        // event the reader surfaces must be internally consistent. Each
        // write encodes its (writer, iteration) identity redundantly in
        // tag, start_ns, and dur_ns, so a torn mix of two writes is
        // detectable.
        let ring = SpanRing::new(8);
        let ids: Vec<u64> = (0..4).map(|w| ring.intern(&format!("writer{w}"))).collect();
        let writers = 4u64;
        let per_writer = 2000u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let ring = ring.clone();
                let id = ids[w as usize];
                s.spawn(move || {
                    for i in 0..per_writer {
                        ring.push(id, w * per_writer + i, w, i);
                    }
                });
            }
            let reader = {
                let ring = ring.clone();
                s.spawn(move || {
                    let mut observed = 0usize;
                    for _ in 0..50 {
                        for ev in ring.events() {
                            observed += 1;
                            let w = ev.start_ns;
                            let i = ev.dur_ns;
                            assert!(w < writers, "torn writer index {w}");
                            assert_eq!(
                                ev.tag,
                                Some(w * per_writer + i),
                                "fields from different writes surfaced together"
                            );
                            assert_eq!(ev.name, format!("writer{w}"));
                        }
                    }
                    observed
                })
            };
            assert!(reader.join().unwrap() > 0, "reader observed nothing");
        });
        let total = writers * per_writer;
        assert_eq!(ring.recorded(), total);
        let events = ring.events();
        assert_eq!(events.len(), 8, "every slot holds a committed event");
        // Sequence numbers are distinct, valid, and (since every writer has
        // quiesced) stable across reads. Exact recency is pinned by the
        // single-writer test; here contention may drop writes, so only
        // distinctness is guaranteed.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 8);
        assert!(*seqs.last().unwrap() <= total);
        assert_eq!(ring.events(), events, "quiet ring reads are stable");
    }
}
