//! Interval metrics flusher: a background thread that wakes every
//! `interval`, diffs the registry's [`Snapshot`] against the previous wake,
//! and writes what moved (text or JSON lines) to stderr or a file. Long
//! running workload binaries become observable without code changes:
//! [`Flusher::from_env`] reads `REPDIR_OBS_FLUSH` and attaches to the
//! [`global`](crate::global) registry.
//!
//! Dropping the flusher stops the thread and writes one final diff, so even
//! a short-lived binary emits its totals.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use crate::registry::{Registry, Snapshot};

/// How a flushed diff is rendered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushFormat {
    /// One `name = value` line per moved metric, with a flush header.
    Text,
    /// One JSON object per flush (JSON-lines when writing to a file).
    Json,
}

/// Where flushed diffs go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlushSink {
    /// Write to the process's stderr.
    Stderr,
    /// Append to the file at this path (created if absent).
    File(PathBuf),
}

enum Output {
    Stderr,
    File(File),
}

impl Output {
    fn write(&mut self, chunk: &str) {
        // A sink failing mid-run (disk full, closed stderr) must never take
        // the workload down; the flush is best-effort by design.
        let _ = match self {
            Output::Stderr => io::stderr().write_all(chunk.as_bytes()),
            Output::File(f) => f.write_all(chunk.as_bytes()),
        };
    }
}

/// The environment variable [`Flusher::from_env`] reads: `stderr`,
/// `stderr:json`, or a file path (a `.json` suffix selects JSON lines).
pub const FLUSH_ENV: &str = "REPDIR_OBS_FLUSH";

/// Optional override for the flush interval, in milliseconds
/// (default 1000).
pub const FLUSH_INTERVAL_ENV: &str = "REPDIR_OBS_FLUSH_MS";

/// A background interval flusher over one [`Registry`]. Stops (with a final
/// flush) when dropped.
pub struct Flusher {
    stop: Option<mpsc::Sender<()>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Flusher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flusher")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Flusher {
    /// Starts a flusher over `registry`. Fails only if a file sink cannot
    /// be opened.
    pub fn new(
        registry: &Registry,
        interval: Duration,
        sink: FlushSink,
        format: FlushFormat,
    ) -> io::Result<Flusher> {
        let mut output = match sink {
            FlushSink::Stderr => Output::Stderr,
            FlushSink::File(path) => {
                Output::File(OpenOptions::new().create(true).append(true).open(path)?)
            }
        };
        let registry = registry.clone();
        // Baseline on the caller's thread: anything recorded after `new`
        // returns is guaranteed to land in some diff. Snapshotting inside
        // the spawned thread would race with the caller's first increments
        // and silently absorb them into the baseline.
        let baseline = registry.snapshot();
        let (stop, stopped) = mpsc::channel::<()>();
        let handle = thread::Builder::new()
            .name("repdir-obs-flush".into())
            .spawn(move || {
                let mut last = baseline;
                let mut seq = 0u64;
                loop {
                    let done = matches!(
                        stopped.recv_timeout(interval),
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected)
                    );
                    let now = registry.snapshot();
                    flush_one(&mut output, &now.diff(&last), format, seq);
                    last = now;
                    seq += 1;
                    if done {
                        return;
                    }
                }
            })
            .expect("spawn obs flusher");
        Ok(Flusher {
            stop: Some(stop),
            handle: Some(handle),
        })
    }

    /// Starts a flusher over the [`global`](crate::global) registry if
    /// [`FLUSH_ENV`] is set: `stderr`, `stderr:json`, or a file path (JSON
    /// lines when the path ends in `.json`). [`FLUSH_INTERVAL_ENV`] overrides
    /// the 1s interval. Returns `None` when unset, empty, or the sink cannot
    /// be opened — a broken flush config must not take the workload down.
    pub fn from_env() -> Option<Flusher> {
        let target = std::env::var(FLUSH_ENV).ok()?;
        if target.is_empty() {
            return None;
        }
        let (sink, format) = match target.as_str() {
            "stderr" => (FlushSink::Stderr, FlushFormat::Text),
            "stderr:json" => (FlushSink::Stderr, FlushFormat::Json),
            path => (
                FlushSink::File(PathBuf::from(path)),
                if path.ends_with(".json") {
                    FlushFormat::Json
                } else {
                    FlushFormat::Text
                },
            ),
        };
        let interval_ms = std::env::var(FLUSH_INTERVAL_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1000)
            .max(1);
        Flusher::new(
            crate::global(),
            Duration::from_millis(interval_ms),
            sink,
            format,
        )
        .ok()
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        // Dropping the sender wakes recv_timeout with Disconnected; the
        // thread writes one final diff and exits.
        self.stop.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn flush_one(output: &mut Output, diff: &Snapshot, format: FlushFormat, seq: u64) {
    match format {
        FlushFormat::Text => {
            let body = diff.render_text();
            if !body.is_empty() {
                output.write(&format!("== obs flush {seq} ==\n{body}"));
            }
        }
        FlushFormat::Json => {
            output.write(&format!(
                "{{\"flush\": {seq}, \"diff\": {}}}\n",
                diff.render_json()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flusher_writes_interval_diffs_and_final_flush_on_drop() {
        let dir = std::env::temp_dir().join(format!("repdir_obs_flush_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush_test.json");
        let _ = std::fs::remove_file(&path);

        let reg = Registry::new();
        {
            let _flusher = Flusher::new(
                &reg,
                Duration::from_millis(10),
                FlushSink::File(path.clone()),
                FlushFormat::Json,
            )
            .unwrap();
            reg.counter("flush.ops").add(5);
            // At least one interval elapses with the counter movement in it.
            std::thread::sleep(Duration::from_millis(50));
            reg.counter("flush.ops").add(2);
            // Drop without waiting: the final flush must carry the last 2.
        }
        let written = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert!(lines.len() >= 2, "interval + final flush: {written}");
        for line in &lines {
            assert!(line.starts_with("{\"flush\": "), "JSONL shape: {line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        // Every increment is in exactly one diff: the per-flush deltas sum
        // to the counter's total.
        let total: u64 = lines
            .iter()
            .filter_map(|l| {
                let key = "\"flush.ops\": ";
                let at = l.find(key)?;
                let rest = &l[at + key.len()..];
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].parse::<u64>().ok()
            })
            .sum();
        assert_eq!(total, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_flushes_skip_quiet_intervals() {
        let dir = std::env::temp_dir().join(format!("repdir_obs_flush_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush_quiet.txt");
        let _ = std::fs::remove_file(&path);

        let reg = Registry::new();
        reg.counter("warm.up").inc();
        {
            let _flusher = Flusher::new(
                &reg,
                Duration::from_millis(5),
                FlushSink::File(path.clone()),
                FlushFormat::Text,
            )
            .unwrap();
            // Nothing moves while the flusher runs.
            std::thread::sleep(Duration::from_millis(40));
        }
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(
            written.is_empty(),
            "quiet intervals write nothing: {written}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_env_without_config_is_none() {
        // The test harness never sets the env var; a missing/empty config
        // must disable flushing rather than erroring.
        std::env::remove_var(FLUSH_ENV);
        assert!(Flusher::from_env().is_none());
    }
}
