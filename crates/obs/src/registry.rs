//! The [`Registry`]: a named collection of counters, histograms, and EWMAs
//! plus one span ring, with text/JSON export and snapshot diffing.
//!
//! Handles are resolved by name once (a lock + map lookup) and recorded
//! through lock-free afterwards. Two registries matter in practice: the
//! process-wide [`global`] registry that the subsystem crates (net,
//! rangelock, storage, txn, replica) record into, and per-suite registries
//! (`DirSuite` creates its own) so per-member counters stay exact when many
//! suites — or many parallel tests — run in one process.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::metrics::{bucket_bound_us, Avail, Counter, Ewma, Histogram, HistogramSnapshot};
use crate::span::{ArmedSpan, SpanEvent, SpanGuard, SpanRing, NO_TAG};

/// Default capacity of a registry's span ring.
const DEFAULT_SPAN_CAPACITY: usize = 1024;

struct RegistryInner {
    epoch: Instant,
    armed: AtomicBool,
    counters: RwLock<BTreeMap<String, Counter>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    ewmas: RwLock<BTreeMap<String, Ewma>>,
    avails: RwLock<BTreeMap<String, Avail>>,
    spans: SpanRing,
}

/// A named metric collection. Cloning is an `Arc` clone; all clones share
/// the same metrics.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("armed", &self.timing_armed())
            .field("spans", &self.inner.spans)
            .finish_non_exhaustive()
    }
}

/// The process-wide registry the subsystem crates record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// A fresh, armed registry with the default span capacity.
    pub fn new() -> Self {
        Registry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A fresh, armed registry retaining up to `capacity` spans.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                epoch: Instant::now(),
                armed: AtomicBool::new(true),
                counters: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                ewmas: RwLock::new(BTreeMap::new()),
                avails: RwLock::new(BTreeMap::new()),
                spans: SpanRing::new(capacity),
            }),
        }
    }

    /// A disarmed registry: counters still count, but spans and
    /// [`time`](Registry::time) skip the clock entirely. This is the
    /// "no exporter attached" configuration the overhead gate measures.
    pub fn detached() -> Self {
        let reg = Registry::new();
        reg.set_timing_armed(false);
        reg
    }

    /// Whether timing instrumentation (spans, timed samples) is live.
    pub fn timing_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// Arms or disarms timing instrumentation at runtime.
    pub fn set_timing_armed(&self, armed: bool) {
        self.inner.armed.store(armed, Ordering::Relaxed);
    }

    /// Nanoseconds since this registry's epoch (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().expect("obs lock").get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .expect("obs lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().expect("obs lock").get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .expect("obs lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The EWMA registered under `name` (default smoothing), created on
    /// first use.
    pub fn ewma(&self, name: &str) -> Ewma {
        if let Some(e) = self.inner.ewmas.read().expect("obs lock").get(name) {
            return e.clone();
        }
        self.inner
            .ewmas
            .write()
            .expect("obs lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The availability tracker registered under `name`, created empty on
    /// first use.
    pub fn avail(&self, name: &str) -> Avail {
        if let Some(a) = self.inner.avails.read().expect("obs lock").get(name) {
            return a.clone();
        }
        self.inner
            .avails
            .write()
            .expect("obs lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Opens an untagged scoped timer (see the [`span!`](crate::span)
    /// macro).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_tagged_inner(name, NO_TAG)
    }

    /// Opens a scoped timer tagged with e.g. a member index.
    pub fn span_tagged(&self, name: &str, tag: u64) -> SpanGuard {
        self.span_tagged_inner(name, tag)
    }

    fn span_tagged_inner(&self, name: &str, tag: u64) -> SpanGuard {
        if !self.timing_armed() {
            return SpanGuard { armed: None };
        }
        let name_id = self.inner.spans.intern(name);
        let hist = self.histogram(name);
        let start = Instant::now();
        let start_ns = (start - self.inner.epoch).as_nanos() as u64;
        SpanGuard {
            armed: Some(ArmedSpan {
                ring: self.inner.spans.clone(),
                hist,
                name_id,
                tag,
                start,
                start_ns,
            }),
        }
    }

    /// Times `f` and feeds the duration to `sample` (typically
    /// `|d| ewma.record(d)`), skipping the clock when disarmed. Returns
    /// `f`'s result either way.
    pub fn time<T>(&self, sample: impl FnOnce(std::time::Duration), f: impl FnOnce() -> T) -> T {
        if !self.timing_armed() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        sample(start.elapsed());
        out
    }

    /// The events currently retained in the span ring (oldest first).
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.inner.spans.events()
    }

    /// The underlying span ring (capacity/recorded/dropped introspection).
    pub fn span_ring(&self) -> &SpanRing {
        &self.inner.spans
    }

    /// A point-in-time copy of every named metric. Values are read
    /// per-metric (relaxed), not as one atomic cut — exact once recording
    /// has quiesced, approximate while concurrent.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .read()
                .expect("obs lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .expect("obs lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            ewmas: self
                .inner
                .ewmas
                .read()
                .expect("obs lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.value_us()))
                .collect(),
            avails: self
                .inner
                .avails
                .read()
                .expect("obs lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.rate()))
                .collect(),
        }
    }

    /// Human-readable dump: counters, histogram summaries, EWMAs, and the
    /// most recent spans.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        out.push_str("== histograms (us) ==\n");
        for (name, h) in &snap.histograms {
            if h.count == 0 {
                continue;
            }
            let hist = self.histogram(name);
            out.push_str(&format!(
                "{name}: count={} mean={:.0} p50={} p99={}\n",
                h.count,
                h.sum_us as f64 / h.count as f64,
                hist.quantile_us(0.5).unwrap_or(0),
                hist.quantile_us(0.99).unwrap_or(0),
            ));
        }
        out.push_str("== ewmas (us) ==\n");
        for (name, e) in &snap.ewmas {
            match e {
                Some(v) => out.push_str(&format!("{name} = {v:.1}\n")),
                None => out.push_str(&format!("{name} = (no samples)\n")),
            }
        }
        out.push_str("== avail ==\n");
        for (name, a) in &snap.avails {
            match a {
                Some(v) => out.push_str(&format!("{name} = {v:.3}\n")),
                None => out.push_str(&format!("{name} = (no outcomes)\n")),
            }
        }
        let spans = self.spans();
        let recent = &spans[spans.len().saturating_sub(16)..];
        out.push_str(&format!(
            "== spans (last {} of {} recorded) ==\n",
            recent.len(),
            self.inner.spans.recorded()
        ));
        for ev in recent {
            match ev.tag {
                Some(tag) => out.push_str(&format!(
                    "#{} {} tag={} start={}ns dur={}ns\n",
                    ev.seq, ev.name, tag, ev.start_ns, ev.dur_ns
                )),
                None => out.push_str(&format!(
                    "#{} {} start={}ns dur={}ns\n",
                    ev.seq, ev.name, ev.start_ns, ev.dur_ns
                )),
            }
        }
        out
    }

    /// Machine-readable dump of counters, histograms (with buckets), EWMAs,
    /// and the most recent spans (capped at 64).
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, snap.counters.iter(), |out, (name, v)| {
            out.push_str(&format!("\"{}\": {v}", escape(name)));
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, snap.histograms.iter(), |out, (name, h)| {
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum_us\": {}, \"buckets\": {:?}, \"bounds_us\": {:?}}}",
                escape(name),
                h.count,
                h.sum_us,
                h.buckets,
                bucket_bounds(),
            ));
        });
        out.push_str("},\n  \"ewmas\": {");
        push_entries(&mut out, snap.ewmas.iter(), |out, (name, e)| match e {
            Some(v) => out.push_str(&format!("\"{}\": {v:.3}", escape(name))),
            None => out.push_str(&format!("\"{}\": null", escape(name))),
        });
        out.push_str("},\n  \"avail\": {");
        push_entries(&mut out, snap.avails.iter(), |out, (name, a)| match a {
            Some(v) => out.push_str(&format!("\"{}\": {v:.3}", escape(name))),
            None => out.push_str(&format!("\"{}\": null", escape(name))),
        });
        out.push_str("},\n  \"spans\": [");
        let spans = self.spans();
        let recent = &spans[spans.len().saturating_sub(64)..];
        push_entries(&mut out, recent.iter(), |out, ev| {
            out.push_str(&format!(
                "{{\"seq\": {}, \"name\": \"{}\", \"tag\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
                ev.seq,
                escape(&ev.name),
                ev.tag.map_or("null".to_string(), |t| t.to_string()),
                ev.start_ns,
                ev.dur_ns
            ));
        });
        out.push_str("]\n}\n");
        out
    }
}

fn push_entries<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    mut render: impl FnMut(&mut String, T),
) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render(out, item);
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn bucket_bounds() -> Vec<u64> {
    (0..crate::BUCKET_COUNT).map(bucket_bound_us).collect()
}

/// Plain-data copy of a registry's metrics, with windowed diffing for
/// tests: `after.diff(&before)` isolates exactly what a code path recorded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
    ewmas: BTreeMap<String, Option<f64>>,
    avails: BTreeMap<String, Option<f64>>,
}

impl Snapshot {
    /// The counter's value (0 when absent — an untouched counter and a
    /// missing one are the same observation).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// The named histogram's snapshot, if it has been registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The named EWMA's value (`None` when unregistered or unsampled).
    pub fn ewma(&self, name: &str) -> Option<f64> {
        self.ewmas.get(name).copied().flatten()
    }

    /// The named availability rate (`None` when unregistered or without
    /// outcomes).
    pub fn avail(&self, name: &str) -> Option<f64> {
        self.avails.get(name).copied().flatten()
    }

    /// Counter- and bucket-wise `self - earlier` (saturating). EWMAs and
    /// availability rates are levels, not totals, so the diff keeps `self`'s
    /// values.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let base = earlier.histograms.get(k);
                    (
                        k.clone(),
                        match base {
                            Some(b) => v.diff(b),
                            None => v.clone(),
                        },
                    )
                })
                .collect(),
            ewmas: self.ewmas.clone(),
            avails: self.avails.clone(),
        }
    }

    /// Human-readable dump of the snapshot itself (no spans — those live in
    /// the registry's ring). Quiet metrics (zero counters, empty histograms)
    /// are skipped so interval diffs from the [`Flusher`](crate::Flusher)
    /// show only what moved.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            if *v != 0 {
                out.push_str(&format!("{name} = {v}\n"));
            }
        }
        for (name, h) in &self.histograms {
            if h.count != 0 {
                out.push_str(&format!(
                    "{name}: count={} mean_us={:.0}\n",
                    h.count,
                    h.sum_us as f64 / h.count as f64
                ));
            }
        }
        for (name, e) in &self.ewmas {
            if let Some(v) = e {
                out.push_str(&format!("{name} = {v:.1}us\n"));
            }
        }
        for (name, a) in &self.avails {
            if let Some(v) = a {
                out.push_str(&format!("{name} = {v:.3}\n"));
            }
        }
        out
    }

    /// Machine-readable one-object dump of the snapshot (no spans), same
    /// quiet-metric skipping as [`render_text`](Snapshot::render_text).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        push_entries(
            &mut out,
            self.counters.iter().filter(|(_, v)| **v != 0),
            |out, (name, v)| {
                out.push_str(&format!("\"{}\": {v}", escape(name)));
            },
        );
        out.push_str("}, \"histograms\": {");
        push_entries(
            &mut out,
            self.histograms.iter().filter(|(_, h)| h.count != 0),
            |out, (name, h)| {
                out.push_str(&format!(
                    "\"{}\": {{\"count\": {}, \"sum_us\": {}}}",
                    escape(name),
                    h.count,
                    h.sum_us
                ));
            },
        );
        out.push_str("}, \"ewmas\": {");
        push_entries(
            &mut out,
            self.ewmas.iter().filter(|(_, e)| e.is_some()),
            |out, (name, e)| {
                out.push_str(&format!("\"{}\": {:.3}", escape(name), e.unwrap()));
            },
        );
        out.push_str("}, \"avail\": {");
        push_entries(
            &mut out,
            self.avails.iter().filter(|(_, a)| a.is_some()),
            |out, (name, a)| {
                out.push_str(&format!("\"{}\": {:.3}", escape(name), a.unwrap()));
            },
        );
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        reg.counter("b").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn snapshot_diff_isolates_a_window() {
        let reg = Registry::new();
        reg.counter("ops").add(10);
        reg.histogram("lat").record_us(5);
        reg.ewma("avg").record_us(100.0);
        let before = reg.snapshot();

        reg.counter("ops").add(7);
        reg.counter("new").inc();
        reg.histogram("lat").record_us(6);
        reg.ewma("avg").record_us(0.0);
        let delta = reg.snapshot().diff(&before);

        assert_eq!(delta.counter("ops"), 7);
        assert_eq!(delta.counter("new"), 1);
        assert_eq!(delta.histogram("lat").unwrap().count, 1);
        // EWMA is a level: diff carries the latest value through.
        assert!(delta.ewma("avg").unwrap() < 100.0);
    }

    #[test]
    fn spans_record_into_ring_and_histogram() {
        let reg = Registry::new();
        {
            let _a = reg.span("quorum.collect");
            let _b = reg.span_tagged("rpc.call", 3);
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        // Guards drop in reverse declaration order: the tagged span lands
        // first.
        assert_eq!(spans[0].name, "rpc.call");
        assert_eq!(spans[0].tag, Some(3));
        assert_eq!(spans[1].name, "quorum.collect");
        assert_eq!(spans[1].tag, None);
        assert!(spans[0].start_ns <= spans[1].start_ns + spans[1].dur_ns);
        assert_eq!(reg.snapshot().histogram("rpc.call").unwrap().count, 1);
    }

    #[test]
    fn detached_registry_skips_spans_but_keeps_counters() {
        let reg = Registry::detached();
        {
            let _s = reg.span("never.recorded");
        }
        reg.counter("still.counts").inc();
        let timed = reg.time(|_| panic!("sample must not run"), || 42);
        assert_eq!(timed, 42);
        assert!(reg.spans().is_empty());
        assert_eq!(reg.snapshot().counter("still.counts"), 1);

        reg.set_timing_armed(true);
        {
            let _s = reg.span("recorded");
        }
        assert_eq!(reg.spans().len(), 1);
    }

    #[test]
    fn time_feeds_sample_when_armed() {
        let reg = Registry::new();
        let e = reg.ewma("reply");
        let out = reg.time(|d| e.record(d), || "ok");
        assert_eq!(out, "ok");
        assert!(e.value_us().is_some());
    }

    #[test]
    fn avail_handles_shared_and_snapshot_renders_diffs() {
        let reg = Registry::new();
        reg.avail("m.avail").record(true);
        reg.avail("m.avail").record(true);
        reg.avail("m.avail").record(false);
        assert_eq!(reg.snapshot().avail("m.avail"), Some(2.0 / 3.0));
        assert_eq!(reg.snapshot().avail("missing"), None);

        let before = reg.snapshot();
        reg.counter("ops").add(3);
        reg.counter("quiet").reset();
        reg.histogram("lat").record_us(10);
        let delta = reg.snapshot().diff(&before);
        // Levels carry through a diff; totals subtract.
        assert_eq!(delta.avail("m.avail"), Some(2.0 / 3.0));
        assert_eq!(delta.counter("ops"), 3);

        let text = delta.render_text();
        assert!(text.contains("ops = 3"));
        assert!(text.contains("m.avail = 0.667"));
        assert!(!text.contains("quiet"), "zero counters are skipped: {text}");
        let json = delta.render_json();
        assert!(json.contains("\"ops\": 3"));
        assert!(json.contains("\"m.avail\": 0.667"));
        assert!(!json.contains("quiet"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("obs.test.global");
        global().counter("obs.test.global").add(2);
        assert!(a.get() >= 2, "same underlying counter");
    }

    #[test]
    fn text_and_json_exports_cover_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("net.sent").add(9);
        reg.histogram("rpc.reply").record_us(250);
        reg.ewma("member.0.reply").record_us(123.0);
        reg.avail("member.0.avail").record(true);
        reg.avail("member.0.avail").record(false);
        {
            let _s = reg.span_tagged("quorum.collect", 1);
        }
        let text = reg.render_text();
        assert!(text.contains("net.sent = 9"));
        assert!(text.contains("rpc.reply: count=1"));
        assert!(text.contains("member.0.reply = 123.0"));
        assert!(text.contains("member.0.avail = 0.500"));
        assert!(text.contains("quorum.collect tag=1"));

        let json = reg.render_json();
        assert!(json.contains("\"net.sent\": 9"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"member.0.reply\": 123.000"));
        assert!(json.contains("\"member.0.avail\": 0.500"));
        assert!(json.contains("\"name\": \"quorum.collect\""));
        // Balanced braces/brackets — cheap structural sanity without a
        // parser (the bench JSON files get the same treatment).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
