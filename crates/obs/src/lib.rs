//! Observability for the replicated directory: metrics and tracing with no
//! dependencies beyond `std`.
//!
//! Daniels & Spector evaluate their algorithm entirely through message
//! counts and update-site latency (§4); this crate makes those quantities —
//! and the timing behind the suite's concurrent quorum waves — first-class:
//!
//! * [`Counter`] — a shared atomic event counter.
//! * [`Histogram`] — a fixed-bucket (power-of-two microsecond) latency
//!   histogram with approximate quantiles.
//! * [`Ewma`] — an exponentially weighted moving average of reply times;
//!   the suite keeps one per member and `LatencyPolicy` orders quorum
//!   candidates by it.
//! * [`Avail`] — a windowed success-rate tracker; the suite keeps one per
//!   member (`suite.member.{i}.avail`), fed by every ping/RPC outcome, and
//!   sizes adaptive quorum waves by the expected yield it reports.
//! * [`Flusher`] — an interval thread that writes snapshot *diffs* (text or
//!   JSON lines) to stderr or a file; `Flusher::from_env` wires it into any
//!   binary via the `REPDIR_OBS_FLUSH` env var.
//! * [`SpanRing`] + [`span!`] — a lock-free-ish ring buffer of scoped-timer
//!   events (`span!(reg, "quorum.collect", member = i)`) with monotonic
//!   timestamps; torn slots are detected and skipped on read, never locked
//!   against.
//! * [`Registry`] — a named collection of all of the above with text and
//!   JSON exporters and a [`Snapshot`] diff API for tests.
//!
//! # Overhead model
//!
//! Counters are single relaxed atomic adds and are always live. Everything
//! that needs a clock read (spans, timed EWMA samples) is gated on the
//! registry's *armed* flag — one relaxed load when disarmed — so a detached
//! registry makes the instrumentation effectively free. `scripts/check.sh`
//! holds the armed build to within 5% of the disarmed baseline.
//!
//! # Example
//!
//! ```
//! use repdir_obs::{Registry, span};
//!
//! let reg = Registry::new();
//! let requests = reg.counter("rpc.requests");
//! for member in 0..3u64 {
//!     let _span = span!(reg, "quorum.collect", member = member);
//!     requests.inc();
//! }
//! assert_eq!(reg.snapshot().counter("rpc.requests"), 3);
//! assert_eq!(reg.spans().len(), 3);
//! println!("{}", reg.render_text());
//! ```

mod flush;
mod metrics;
mod registry;
mod span;

pub use flush::{FlushFormat, FlushSink, Flusher, FLUSH_ENV, FLUSH_INTERVAL_ENV};
pub use metrics::{Avail, Counter, Ewma, Histogram, HistogramSnapshot, AVAIL_WINDOW, BUCKET_COUNT};
pub use registry::{global, Registry, Snapshot};
pub use span::{SpanEvent, SpanGuard, SpanRing};

/// Opens a scoped timer on a [`Registry`]: the span is recorded into the
/// registry's ring buffer (and a histogram of the same name) when the guard
/// drops. With the registry disarmed this is a single relaxed load.
///
/// ```
/// use repdir_obs::{Registry, span};
/// let reg = Registry::new();
/// {
///     let _s = span!(reg, "wal.sync");
///     let _t = span!(reg, "quorum.collect", member = 2u64);
/// }
/// assert_eq!(reg.spans().len(), 2);
/// ```
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr) => {
        $reg.span($name)
    };
    ($reg:expr, $name:expr, member = $tag:expr) => {
        $reg.span_tagged($name, ($tag) as u64)
    };
    ($reg:expr, $name:expr, tag = $tag:expr) => {
        $reg.span_tagged($name, ($tag) as u64)
    };
}
