//! Self-timed benchmarks of the representative state structures: the
//! BTreeMap-backed `GapMap` against the paper-prescribed `GapBTree` (§5),
//! at several sizes — the "no performance penalty except on Delete"
//! abstract claim at the data-structure level.

use repdir_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repdir_core::{GapMap, Key, UserKey, Value, Version};
use repdir_storage::GapBTree;

fn key(i: u64) -> Key {
    Key::User(UserKey::from_u64(i))
}

fn filled_map(n: u64) -> GapMap {
    let mut m = GapMap::new();
    for i in 0..n {
        m.insert(&key(i * 10), Version::new(1), Value::from("v"))
            .expect("insert");
    }
    m
}

fn filled_tree(n: u64, order: usize) -> GapBTree {
    let mut t = GapBTree::new(order);
    for i in 0..n {
        t.insert(&key(i * 10), Version::new(1), Value::from("v"))
            .expect("insert");
    }
    t
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_lookup");
    for &n in &[100u64, 10_000] {
        let m = filled_map(n);
        let t = filled_tree(n, 16);
        let probe_hit = key((n / 2) * 10);
        let probe_gap = key((n / 2) * 10 + 5);
        group.bench_function(BenchmarkId::new("gapmap_hit", n), |b| {
            b.iter(|| m.lookup(std::hint::black_box(&probe_hit)))
        });
        group.bench_function(BenchmarkId::new("gapmap_gap", n), |b| {
            b.iter(|| m.lookup(std::hint::black_box(&probe_gap)))
        });
        group.bench_function(BenchmarkId::new("gapbtree_hit", n), |b| {
            b.iter(|| t.lookup(std::hint::black_box(&probe_hit)))
        });
        group.bench_function(BenchmarkId::new("gapbtree_gap", n), |b| {
            b.iter(|| t.lookup(std::hint::black_box(&probe_gap)))
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_insert_coalesce");
    for &n in &[100u64, 10_000] {
        let mut m = filled_map(n);
        let probe = key((n / 2) * 10 + 5);
        let lo = key((n / 2) * 10);
        let hi = key((n / 2) * 10 + 10);
        group.bench_function(BenchmarkId::new("gapmap", n), |b| {
            b.iter(|| {
                m.insert(&probe, Version::new(2), Value::from("x"))
                    .expect("insert");
                m.coalesce(&lo, &hi, Version::new(3)).expect("coalesce");
            })
        });
        let mut t = filled_tree(n, 16);
        group.bench_function(BenchmarkId::new("gapbtree", n), |b| {
            b.iter(|| {
                t.insert(&probe, Version::new(2), Value::from("x"))
                    .expect("insert");
                t.coalesce(&lo, &hi, Version::new(3)).expect("coalesce");
            })
        });
    }
    group.finish();
}

fn bench_neighbors(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_neighbors");
    let n = 10_000u64;
    let m = filled_map(n);
    let t = filled_tree(n, 16);
    let probe = key((n / 2) * 10 + 5);
    group.bench_function("gapmap_pred_succ", |b| {
        b.iter(|| {
            m.predecessor(std::hint::black_box(&probe)).expect("pred");
            m.successor(std::hint::black_box(&probe)).expect("succ");
        })
    });
    group.bench_function("gapbtree_pred_succ", |b| {
        b.iter(|| {
            t.predecessor(std::hint::black_box(&probe)).expect("pred");
            t.successor(std::hint::black_box(&probe)).expect("succ");
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lookup, bench_insert_remove, bench_neighbors
}
criterion_main!(benches);
