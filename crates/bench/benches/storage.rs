//! Self-timed benchmarks of the durability substrate: WAL append/sync cost
//! per transaction, recovery replay speed, and checkpoint amortization.

use std::sync::Arc;

use repdir_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repdir_core::{Key, UserKey, Value, Version};
use repdir_storage::{DurableState, SimDisk};
use repdir_txn::TxnId;

fn key(i: u64) -> Key {
    Key::User(UserKey::from_u64(i))
}

fn bench_txn_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_commit");
    for &ops_per_txn in &[1u64, 10] {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(disk);
        let mut next = 0u64;
        group.bench_function(BenchmarkId::new("insert_txn", ops_per_txn), |b| {
            b.iter(|| {
                let t = TxnId(next + 1);
                st.begin(t);
                for _ in 0..ops_per_txn {
                    next += 1;
                    st.insert(t, &key(next), Version::new(1), Value::from("v"))
                        .expect("insert");
                }
                st.commit(t);
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_recovery");
    group.sample_size(20);
    for &committed in &[100u64, 5_000] {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        for i in 0..committed {
            let t = TxnId(i + 1);
            st.begin(t);
            st.insert(t, &key(i), Version::new(1), Value::from("v"))
                .expect("insert");
            st.commit(t);
        }
        group.bench_function(BenchmarkId::new("replay", committed), |b| {
            b.iter(|| DurableState::recover(Arc::clone(&disk)).expect("recover"))
        });
        // The same history with a checkpoint at the end replays instantly
        // past the log body.
        let mut st2 = DurableState::recover(Arc::clone(&disk)).expect("recover");
        st2.checkpoint().expect("checkpoint");
        let disk2 = Arc::clone(st2.disk());
        group.bench_function(BenchmarkId::new("replay_checkpointed", committed), |b| {
            b.iter(|| DurableState::recover(Arc::clone(&disk2)).expect("recover"))
        });
    }
    group.finish();
}

fn bench_abort(c: &mut Criterion) {
    let disk = Arc::new(SimDisk::new());
    let mut st = DurableState::new(disk);
    // Stable backdrop of entries so coalesce has boundaries.
    let setup = TxnId(1);
    st.begin(setup);
    for i in 0..100 {
        st.insert(setup, &key(i * 100), Version::new(1), Value::from("v"))
            .expect("insert");
    }
    st.commit(setup);
    let mut n = 1u64;
    c.bench_function("storage_abort_rollback", |b| {
        b.iter(|| {
            n += 1;
            let t = TxnId(n);
            st.begin(t);
            st.insert(t, &key(4_050), Version::new(2), Value::from("x"))
                .expect("insert");
            st.coalesce(t, &key(4_000), &key(4_100), Version::new(3))
                .expect("coalesce");
            st.abort(t);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_txn_commit, bench_recovery, bench_abort
}
criterion_main!(benches);
