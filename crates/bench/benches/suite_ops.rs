//! Self-timed benchmarks of the suite operations across configurations —
//! the per-operation cost behind Figures 14/15, including the delete path
//! with its real-neighbor searches.

use repdir_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repdir_core::suite::{DirSuite, SuiteConfig};
use repdir_core::{Key, LocalRep, UserKey, Value};

fn filled_suite(n: u32, r: u32, w: u32, entries: u64, seed: u64) -> DirSuite<LocalRep> {
    let mut suite =
        DirSuite::in_process(SuiteConfig::symmetric(n, r, w).expect("legal"), seed).expect("suite");
    for i in 0..entries {
        suite
            .insert(&Key::User(UserKey::from_u64(i * 1000)), &Value::from("v"))
            .expect("fill");
    }
    suite
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_lookup");
    for &(n, r, w) in &[(1u32, 1u32, 1u32), (3, 2, 2), (5, 3, 3)] {
        let mut suite = filled_suite(n, r, w, 100, 1);
        let key = Key::User(UserKey::from_u64(50 * 1000));
        group.bench_function(BenchmarkId::from_parameter(format!("{n}-{r}-{w}")), |b| {
            b.iter(|| suite.lookup(std::hint::black_box(&key)).expect("lookup"))
        });
    }
    group.finish();
}

fn bench_insert_delete_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_insert_delete");
    for &(n, r, w) in &[(1u32, 1u32, 1u32), (3, 2, 2), (5, 3, 3)] {
        let mut suite = filled_suite(n, r, w, 100, 2);
        let key = Key::User(UserKey::from_u64(12_345));
        group.bench_function(BenchmarkId::from_parameter(format!("{n}-{r}-{w}")), |b| {
            b.iter(|| {
                suite.insert(&key, &Value::from("x")).expect("insert");
                suite.delete(&key).expect("delete");
            })
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_update");
    for &(n, r, w) in &[(3u32, 2u32, 2u32), (5, 2, 4)] {
        let mut suite = filled_suite(n, r, w, 100, 3);
        let key = Key::User(UserKey::from_u64(50 * 1000));
        group.bench_function(BenchmarkId::from_parameter(format!("{n}-{r}-{w}")), |b| {
            b.iter(|| suite.update(&key, &Value::from("y")).expect("update"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lookup, bench_insert_delete_cycle, bench_update
}
criterion_main!(benches);
