//! Self-timed benchmarks of the range-lock table: uncontended
//! acquire/release, compatibility scanning with many holders, and
//! multi-threaded disjoint acquisition.

use std::sync::Arc;
use std::time::Duration;

use repdir_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repdir_core::Key;
use repdir_rangelock::{KeyRange, LockMode, RangeLockTable, TxnId};

const TIMEOUT: Duration = Duration::from_secs(1);

fn range(a: u64, b: u64) -> KeyRange {
    KeyRange::new(
        Key::User(repdir_core::UserKey::from_u64(a)),
        Key::User(repdir_core::UserKey::from_u64(b)),
    )
}

fn bench_uncontended(c: &mut Criterion) {
    let table = RangeLockTable::new();
    c.bench_function("rangelock_acquire_release", |b| {
        b.iter(|| {
            table
                .acquire(TxnId(1), LockMode::Modify, range(10, 20), TIMEOUT)
                .expect("grant");
            table.release_all(TxnId(1));
        })
    });
}

fn bench_scan_with_holders(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangelock_scan");
    for &holders in &[10u64, 100, 1000] {
        let table = RangeLockTable::new();
        for i in 0..holders {
            table
                .acquire(
                    TxnId(i + 10),
                    LockMode::Lookup,
                    range(i * 100, i * 100 + 50),
                    TIMEOUT,
                )
                .expect("grant");
        }
        // The probe lands in a gap between holders' ranges.
        group.bench_function(BenchmarkId::from_parameter(holders), |b| {
            b.iter(|| {
                table
                    .acquire(TxnId(1), LockMode::Modify, range(55, 60), TIMEOUT)
                    .expect("grant");
                table.release_all(TxnId(1));
            })
        });
    }
    group.finish();
}

fn bench_threads_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangelock_threads");
    group.sample_size(10);
    for &threads in &[2usize, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                let table = Arc::new(RangeLockTable::new());
                let mut handles = Vec::new();
                for t in 0..threads {
                    let table = Arc::clone(&table);
                    handles.push(std::thread::spawn(move || {
                        let lo = (t as u64) * 1_000_000;
                        for i in 0..200u64 {
                            table
                                .acquire(
                                    TxnId(t as u64 + 1),
                                    LockMode::Modify,
                                    range(lo + i, lo + i + 1),
                                    TIMEOUT,
                                )
                                .expect("grant");
                            table.release_all(TxnId(t as u64 + 1));
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("worker");
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_uncontended, bench_scan_with_holders, bench_threads_disjoint
}
criterion_main!(benches);
