//! Ablation for the §5 observation: "if the memberships of write quorums
//! change infrequently, coalescing during deletions will not be costly.
//! Thus, the statistics presented in the previous section are worse than
//! could be achieved, because quorum members were selected randomly."
//!
//! Sweeps the quorum-change probability from 0 (fixed quorums — a moving
//! primary) to 1 (the paper's fully random simulation) and reports the
//! three deletion statistics at each point.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin ablation_quorum
//! ```

use repdir_core::suite::SuiteConfig;
use repdir_workload::{run_sim, PolicyKind, SimParams};

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    println!("Ablation: quorum stickiness vs deletion overhead (3-2-2, ~100");
    println!("entries, 10 000 ops per point)");
    println!();
    println!(
        "{:<24} {:>18} {:>18} {:>18}",
        "quorum policy", "entries-coalesced", "ghost deletions", "copy insertions"
    );
    let mut points: Vec<(String, PolicyKind)> =
        vec![("fixed (p=0)".into(), PolicyKind::Sticky(0.0))];
    for p in [0.001, 0.01, 0.1, 0.5] {
        points.push((format!("sticky p={p}"), PolicyKind::Sticky(p)));
    }
    points.push(("random (paper §4)".into(), PolicyKind::Random));

    for (label, policy) in points {
        let mut params =
            SimParams::figure14(SuiteConfig::symmetric(3, 2, 2).expect("legal"), 0xAB1A);
        params.policy = policy;
        let report = run_sim(&params);
        println!(
            "{:<24} {:>18.3} {:>18.3} {:>18.3}",
            label,
            report.entries_coalesced.mean(),
            report.deletions_while_coalescing.mean(),
            report.insertions_while_coalescing.mean(),
        );
    }

    println!();
    println!("Expected shape: with fixed quorums every statistic collapses to the");
    println!("no-ghost floor (entries-coalesced = 1.0: just the deleted entry);");
    println!("overhead rises monotonically as quorums churn, peaking at the");
    println!("paper's fully random selection — confirming that §4's numbers are");
    println!("a worst case.");
}
