//! Sequential vs scatter-gather quorum RPC latency over a fabric with
//! nonzero per-hop delay.
//!
//! The paper's cost model (§3–§4) counts quorum *rounds*: the suite sends to
//! all quorum members and gathers replies, so an operation should cost the
//! slowest member's round-trip, not the sum of every member's. This bench
//! measures exactly that gap: the same `DirSuite` workload over the same
//! latency fabric, once with fan-out disabled (every member RPC serialized)
//! and once with the scatter-gather executor (the default).
//!
//! ```text
//! cargo run --release -p repdir-bench --bin suite_latency [-- --quick] [--check]
//! ```
//!
//! `--quick` shrinks the workload and per-hop delay for CI; `--check` exits
//! nonzero unless fan-out beats sequential by at least 1.5x median latency
//! on every quorum size >= 2 (the acceptance gate `scripts/check.sh` runs),
//! and unless the obs-instrumented build (timing armed: spans and latency
//! samples recorded) stays within 5% of the same workload with every
//! registry disarmed — the pre-instrumentation baseline shape.
//! Every run rewrites `BENCH_quorum_fanout.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir_core::{Key, RepId, Value};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir_txn::TxnId;

/// One measured configuration: an `n`-member suite with the given quorums.
struct Config {
    members: u32,
    read_quorum: u32,
    write_quorum: u32,
}

/// Latency samples for one mode (one `Duration` per timed suite op).
struct Samples {
    us: Vec<u64>,
}

impl Samples {
    fn from_durations(mut ds: Vec<Duration>) -> Self {
        ds.sort();
        Samples {
            us: ds.iter().map(|d| d.as_micros() as u64).collect(),
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        let idx = ((self.us.len() - 1) as f64 * p).round() as usize;
        self.us[idx]
    }

    fn median(&self) -> u64 {
        self.percentile(0.5)
    }

    fn mean(&self) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        self.us.iter().sum::<u64>() / self.us.len() as u64
    }
}

/// Everything needed to tear a suite run down again: the reply router and
/// server threads live until these handles drop.
struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    _handles: Vec<ServerHandle>,
}

/// Builds a fresh suite of remote clients over a lossless fabric with fixed
/// per-hop latency. Fresh per mode so WAL growth and ghosts from one run
/// never skew the other.
fn build(cfg: &Config, base: Duration, seed: u64, fanout: bool) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(base),
    });
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..cfg.members {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(Duration::from_secs(10));
        client
            .begin()
            .expect("begin never fails on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(cfg.members, cfg.read_quorum, cfg.write_quorum)
        .expect("static configs are valid");
    let mut suite = DirSuite::new(clients, config, Box::new(FixedPolicy::new()))
        .expect("client count matches config");
    suite.set_fanout(fanout);
    Fixture {
        suite,
        _handles: handles,
    }
}

/// Runs the timed workload: a mix of inserts, lookups, and deletes, each op
/// timed individually. Identical op sequence in both modes.
fn run_workload(suite: &mut DirSuite<RemoteSessionClient>, ops: usize) -> Samples {
    let mut times = Vec::new();
    for i in 0..ops {
        let key = Key::from(format!("key{i:04}").as_str());
        let t = Instant::now();
        suite.insert(&key, &Value::from("v")).expect("insert");
        times.push(t.elapsed());
        let t = Instant::now();
        suite.lookup(&key).expect("lookup");
        times.push(t.elapsed());
        if i % 4 == 3 {
            let victim = Key::from(format!("key{:04}", i - 1).as_str());
            let t = Instant::now();
            suite.delete(&victim).expect("delete");
            times.push(t.elapsed());
        }
    }
    Samples::from_durations(times)
}

/// The obs-overhead measurement: one fan-out workload timed with metrics
/// timing armed and once with every registry (the suite's and the global
/// one) disarmed. Disarmed skips every clock read and span record — the
/// pre-obs baseline — so the ratio is the instrumentation's cost.
struct Overhead {
    armed: Samples,
    detached: Samples,
}

impl Overhead {
    fn ratio(&self) -> f64 {
        self.armed.median() as f64 / self.detached.median().max(1) as f64
    }
}

fn measure_overhead(base: Duration, ops: usize) -> Overhead {
    let cfg = Config {
        members: 3,
        read_quorum: 2,
        write_quorum: 2,
    };
    let mut armed = None;
    let mut detached = None;
    for arm in [true, false] {
        let mut fx = build(&cfg, base, 0x0B5 + u64::from(arm), true);
        fx.suite.obs().set_timing_armed(arm);
        repdir_obs::global().set_timing_armed(arm);
        let samples = run_workload(&mut fx.suite, ops);
        if arm {
            armed = Some(samples);
        } else {
            detached = Some(samples);
        }
    }
    repdir_obs::global().set_timing_armed(true);
    Overhead {
        armed: armed.expect("measured"),
        detached: detached.expect("measured"),
    }
}

struct Row {
    cfg: Config,
    ops: usize,
    sequential: Samples,
    fanout: Samples,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.sequential.median() as f64 / self.fanout.median().max(1) as f64
    }
}

fn json_samples(s: &Samples) -> String {
    format!(
        r#"{{"median_us": {}, "mean_us": {}, "p90_us": {}}}"#,
        s.median(),
        s.mean(),
        s.percentile(0.9)
    )
}

fn write_json(
    rows: &[Row],
    overhead: &Overhead,
    base: Duration,
    quick: bool,
) -> std::io::Result<std::path::PathBuf> {
    let mut configs = Vec::new();
    for row in rows {
        configs.push(format!(
            concat!(
                "    {{\"members\": {}, \"read_quorum\": {}, \"write_quorum\": {}, ",
                "\"timed_ops\": {},\n     \"sequential\": {},\n     \"fanout\": {},\n",
                "     \"speedup_median\": {:.3}}}"
            ),
            row.cfg.members,
            row.cfg.read_quorum,
            row.cfg.write_quorum,
            row.ops,
            json_samples(&row.sequential),
            json_samples(&row.fanout),
            row.speedup()
        ));
    }
    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"suite_latency\",\n  \"mode\": \"{}\",\n",
            "  \"per_hop_latency_us\": {},\n  \"configs\": [\n{}\n  ],\n",
            "  \"obs_overhead\": {{\"armed\": {}, \"detached\": {}, ",
            "\"ratio_median\": {:.4}}}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        base.as_micros(),
        configs.join(",\n"),
        json_samples(&overhead.armed),
        json_samples(&overhead.detached),
        overhead.ratio()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_quorum_fanout.json");
    std::fs::write(&path, doc)?;
    Ok(path.canonicalize().unwrap_or(path))
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let base = if quick {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(5)
    };
    let ops = if quick { 12 } else { 24 };
    let configs = if quick {
        vec![Config {
            members: 3,
            read_quorum: 2,
            write_quorum: 2,
        }]
    } else {
        vec![
            Config {
                members: 3,
                read_quorum: 2,
                write_quorum: 2,
            },
            Config {
                members: 5,
                read_quorum: 3,
                write_quorum: 3,
            },
        ]
    };

    println!(
        "suite_latency: per-hop latency {}ms, {} insert/lookup/delete rounds per mode",
        base.as_millis(),
        ops
    );
    println!();
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>10}",
        "config", "ops", "seq median", "fan median", "speedup"
    );

    let mut rows = Vec::new();
    for cfg in configs {
        let mut sequential = None;
        let mut fanned = None;
        for fanout in [false, true] {
            let mut fx = build(&cfg, base, 0xFA + u64::from(fanout), fanout);
            let samples = run_workload(&mut fx.suite, ops);
            if fanout {
                fanned = Some(samples);
            } else {
                sequential = Some(samples);
            }
        }
        let row = Row {
            ops,
            sequential: sequential.expect("measured"),
            fanout: fanned.expect("measured"),
            cfg,
        };
        println!(
            "{:<12} {:>6} {:>12}us {:>12}us {:>9.2}x",
            format!(
                "{}-{}-{}",
                row.cfg.members, row.cfg.read_quorum, row.cfg.write_quorum
            ),
            row.ops,
            row.sequential.median(),
            row.fanout.median(),
            row.speedup()
        );
        rows.push(row);
    }

    let overhead = measure_overhead(base, ops);
    println!();
    println!(
        "obs overhead (3-2-2 fan-out): armed median {}us, detached median {}us, ratio {:.3}",
        overhead.armed.median(),
        overhead.detached.median(),
        overhead.ratio()
    );

    match write_json(&rows, &overhead, base, quick) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_quorum_fanout.json: {e}");
            std::process::exit(2);
        }
    }

    println!();
    println!("Expected shape: a quorum round costs max(member latency) with");
    println!("fan-out instead of sum(member latency); larger quorums widen the");
    println!("gap (2 RPC rounds per op regardless of quorum size).");

    if check {
        const GATE: f64 = 1.5;
        let mut ok = true;
        for row in &rows {
            if row.cfg.read_quorum >= 2 && row.speedup() < GATE {
                eprintln!(
                    "FAIL: config {}-{}-{} speedup {:.2}x below the {GATE}x gate",
                    row.cfg.members,
                    row.cfg.read_quorum,
                    row.cfg.write_quorum,
                    row.speedup()
                );
                ok = false;
            }
        }
        // The obs gate: instrumented (timing armed) must stay within 5% of
        // the disarmed baseline, plus a 1ms absolute slop so scheduler
        // noise on a network-bound median cannot flake CI.
        const OBS_GATE: f64 = 1.05;
        const OBS_SLOP_US: u64 = 1_000;
        let budget = (overhead.detached.median() as f64 * OBS_GATE) as u64 + OBS_SLOP_US;
        if overhead.armed.median() > budget {
            eprintln!(
                "FAIL: armed median {}us exceeds {}us (detached {}us * {OBS_GATE} + {OBS_SLOP_US}us slop)",
                overhead.armed.median(),
                budget,
                overhead.detached.median()
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check passed: fan-out >= {GATE}x faster on every quorum config");
        println!(
            "check passed: obs timing overhead within {:.0}% (+{OBS_SLOP_US}us slop) of disarmed baseline",
            (OBS_GATE - 1.0) * 100.0
        );
    }
}
