//! §2's warning about static partitioning under skewed access, measured:
//! "If a small number of ranges were used, then at most that number of
//! transactions could modify a directory concurrently … an uneven
//! distribution of accesses could limit concurrency."
//!
//! Eight concurrent read-modify-write clients per round over 1 000 keys;
//! conflicts counted by the real static-partition version check vs the
//! same-key collisions that per-entry range locking would serialize.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin skew
//! ```

use repdir_workload::skewed_contention;

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    println!("Concurrent RMW conflict rate: static partitions vs per-entry ranges");
    println!("(8 clients/round, 500 rounds, 1000 keys, 3-2-2 replication)");
    println!();
    println!(
        "{:<12} {:>12} {:>22} {:>22}",
        "partitions", "zipf θ", "partition conflicts", "same-key collisions"
    );
    for &partitions in &[2usize, 4, 16, 64] {
        for &theta in &[0.0, 0.8, 0.99, 1.2] {
            let (partition, key) =
                skewed_contention(partitions, 1000, 8, 500, theta, 0x5E3 + partitions as u64);
            println!(
                "{:<12} {:>12} {:>21.1}% {:>21.1}%",
                partitions,
                theta,
                100.0 * partition.conflict_rate(),
                100.0 * key.conflict_rate()
            );
        }
    }
    println!();
    println!("Expected shape: per-entry (same-key) contention stays near zero at");
    println!("every skew; static-partition contention is already visible with");
    println!("uniform access at few partitions and explodes under skew even with");
    println!("many partitions — the §2 warning quantified.");
}
