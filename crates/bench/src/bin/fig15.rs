//! Regenerates the paper's **Figure 15**: detailed statistics for 3-2-2
//! suites at 100 / 1 000 / 10 000 entries, 100 000 operations each —
//! average, maximum, and standard deviation of the three deletion
//! statistics, plus the §4 search-step distribution behind the
//! message-batching claim.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin fig15
//! ```

use repdir_workload::{run_sim, SimParams, SimReport};

/// One Figure 15 row: size label plus (avg, max, σ) triples for the three
/// statistics.
type PaperRow = (&'static str, [f64; 3], [f64; 3], [f64; 3]);

/// The paper's Figure 15 values for side-by-side comparison.
const PAPER: &[PaperRow] = &[
    // size, entries-coalesced (avg max sd), deletions (avg max sd), insertions (avg max sd)
    (
        "100",
        [1.33, 9.0, 0.87],
        [0.88, 8.0, 1.05],
        [0.44, 2.0, 0.59],
    ),
    (
        "1000",
        [1.32, 12.0, 0.86],
        [0.87, 11.0, 1.04],
        [0.45, 2.0, 0.59],
    ),
    (
        "10000",
        [1.20, 9.0, 0.76],
        [0.67, 9.0, 0.90],
        [0.53, 2.0, 0.64],
    ),
];

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    println!("Figure 15: three 3-2-2 directory suites, 100 000 ops each");
    println!();
    let sizes = [100usize, 1_000, 10_000];
    let mut reports = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        eprintln!("running {size}-entry simulation…");
        let params = SimParams::figure15(size, 0x15_000 + i as u64);
        reports.push(run_sim(&params));
    }

    println!(
        "{:<30} {:>24} {:>24} {:>24}",
        "", "100 entries", "1000 entries", "10000 entries"
    );
    print_stat_row(
        "Entries in ranges coalesced",
        &reports,
        |r| r.entries_coalesced,
        PAPER.iter().map(|p| p.1).collect(),
    );
    print_stat_row(
        "Deletions while coalescing",
        &reports,
        |r| r.deletions_while_coalescing,
        PAPER.iter().map(|p| p.2).collect(),
    );
    print_stat_row(
        "Insertions while coalescing",
        &reports,
        |r| r.insertions_while_coalescing,
        PAPER.iter().map(|p| p.3).collect(),
    );

    println!();
    println!("Search-step distribution per delete (pred + succ loop iterations):");
    println!("(the §4 claim: batching 3 predecessor/successor results per message");
    println!(" usually resolves the search in one RPC round — i.e. mass at <= 6)");
    for (size, report) in sizes.iter().zip(&reports) {
        let h = &report.search_steps;
        let frac_1round = h.fraction_at_most(6);
        print!("  {size:>6} entries: ");
        for (steps, count) in h.buckets() {
            print!("{steps}:{count} ");
        }
        println!("  -> P(steps <= 6) = {frac_1round:.4}");
    }
    println!();
    println!("Per-representative entry counts at end (ghost load):");
    for (size, report) in sizes.iter().zip(&reports) {
        println!(
            "  {size:>6} entries: final size {} reps {:?}",
            report.final_size, report.rep_entry_counts
        );
    }
}

fn print_stat_row(
    label: &str,
    reports: &[SimReport],
    get: impl Fn(&SimReport) -> repdir_workload::RunningStat,
    paper: Vec<[f64; 3]>,
) {
    print!("{label:<30}");
    for r in reports {
        let s = get(r);
        print!(
            " {:>9.2} {:>6} {:>7.2}",
            s.mean(),
            s.max() as u64,
            s.std_dev()
        );
    }
    println!();
    print!("{:<30}", "  (paper)");
    for p in paper {
        print!(" {:>9.2} {:>6} {:>7.2}", p[0], p[1] as u64, p[2]);
    }
    println!();
}
