//! Adaptive wave provisioning + hedged RPCs vs minimal-prefix waves on a
//! flaky fabric.
//!
//! The minimal-prefix baseline sizes every quorum ping wave as if each
//! candidate will answer, so one dropped ping costs a full client timeout
//! and a guaranteed extra round, and one slow member stalls the whole wave.
//! The adaptive executor sizes waves by the expected (availability-
//! weighted) vote yield, returns the moment the vote threshold is met, and
//! hedges stragglers — pings *and* read-quorum lookups — to the next spare
//! member after a short delay. By the §3.1 intersection argument any member
//! set whose votes reach the threshold is a valid quorum, so the
//! substitution never changes an answer; it only moves the tail.
//!
//! The fixture is a 5-member suite (R=2, W=4) with one *flaky* member
//! (50% of messages to it are dropped, so RPCs addressed to it stall for
//! the client timeout) and one *slow* member (10x the fast hop). Both
//! modes run the same seeded `RandomPolicy`, so quorum draws include the
//! bad members equally often — the executor is the only variable.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin hedge_bench [-- --quick] [--check]
//! ```
//!
//! `--check` exits nonzero unless the hedged median beats the baseline by
//! the gate factor with total pings within the over-provision bound. Every
//! run rewrites `BENCH_hedge.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, RandomPolicy, SuiteConfig};
use repdir_core::{Key, RepId, Value};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir_txn::TxnId;

const MEMBERS: u32 = 5;
const READ_QUORUM: u32 = 2;
const WRITE_QUORUM: u32 = 4;
/// Member index whose node drops half the messages sent to it.
const FLAKY: usize = 3;
/// Member index behind the 10x latency override.
const SLOW: usize = 4;
const DROP_PROB: f64 = 0.5;
/// The suite's default over-provision cap — the ping-spend bound the
/// check gate enforces.
const MAX_OVERPROVISION: f64 = 2.0;

struct Samples {
    us: Vec<u64>,
}

impl Samples {
    fn from_durations(mut ds: Vec<Duration>) -> Self {
        ds.sort();
        Samples {
            us: ds.iter().map(|d| d.as_micros() as u64).collect(),
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        let idx = ((self.us.len() - 1) as f64 * p).round() as usize;
        self.us[idx]
    }

    fn median(&self) -> u64 {
        self.percentile(0.5)
    }

    fn mean(&self) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        self.us.iter().sum::<u64>() / self.us.len() as u64
    }
}

struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    net: Arc<Network>,
    _handles: Vec<ServerHandle>,
}

/// Builds the suite on a healthy fabric: every hop costs `fast` except
/// messages to the [`SLOW`] member's node. The [`FLAKY`] member's drop
/// override is armed later, after warmup, so both modes seed their
/// estimators on identical clean traffic.
fn build(fast: Duration, slow: Duration, timeout: Duration, seed: u64) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(fast),
    });
    net.set_node_latency(NodeId(100 + SLOW as u32), LatencyModel::fixed(slow));
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..MEMBERS {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(timeout);
        client
            .begin()
            .expect("begin never fails on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(MEMBERS, READ_QUORUM, WRITE_QUORUM)
        .expect("5-2-4 is a valid weighted-voting config");
    let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
        .expect("client count matches config");
    Fixture {
        suite,
        net,
        _handles: handles,
    }
}

/// Warms the directory and the reply estimators on the clean fabric, arms
/// the flaky member's drop override, then times `reads` lookups. A lookup
/// that loses an RPC to a drop is retried until it succeeds — the
/// `ReplicatedDirectory` retry loop — and the *whole* operation is timed,
/// so a mode that stalls on timeouts pays for them in its samples.
fn run_workload(fx: &mut Fixture, warmup: usize, reads: usize) -> Samples {
    for i in 0..warmup {
        let key = Key::from(format!("warm{i:03}").as_str());
        fx.suite.insert(&key, &Value::from("v")).expect("insert");
    }
    fx.net.set_node_drop(NodeId(100 + FLAKY as u32), DROP_PROB);
    let mut times = Vec::new();
    for i in 0..reads {
        let key = Key::from(format!("warm{:03}", i % warmup).as_str());
        let t = Instant::now();
        let mut attempts = 0;
        while fx.suite.lookup(&key).is_err() {
            attempts += 1;
            assert!(attempts < 64, "lookup cannot make progress");
        }
        times.push(t.elapsed());
    }
    Samples::from_durations(times)
}

fn json_samples(s: &Samples) -> String {
    format!(
        r#"{{"median_us": {}, "mean_us": {}, "p90_us": {}}}"#,
        s.median(),
        s.mean(),
        s.percentile(0.9)
    )
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let (fast, slow, timeout) = if quick {
        (
            Duration::from_millis(1),
            Duration::from_millis(10),
            Duration::from_millis(30),
        )
    } else {
        (
            Duration::from_millis(2),
            Duration::from_millis(20),
            Duration::from_millis(60),
        )
    };
    let warmup = 6;
    let reads = if quick { 64 } else { 96 };
    // Hedge after two fast round trips: late enough that a healthy reply
    // always beats it, early enough to duck both the slow member and the
    // client timeout. (Pinned rather than histogram-derived so the bench
    // is reproducible; the suite derives 3 x p50 on its own by default.)
    let hedge_delay = 4 * fast;

    println!(
        "hedge_bench: {MEMBERS} members (R={READ_QUORUM}, W={WRITE_QUORUM}), \
         fast hop {}ms, slow member {SLOW} at {}ms, flaky member {FLAKY} \
         dropping {:.0}% after warmup, client timeout {}ms",
        fast.as_millis(),
        slow.as_millis(),
        DROP_PROB * 100.0,
        timeout.as_millis()
    );
    println!();

    // Baseline: minimal-prefix waves, no hedging.
    let mut fx = build(fast, slow, timeout, 0xFAB);
    fx.suite.set_adaptive_waves(false);
    let baseline = run_workload(&mut fx, warmup, reads);
    let pings_baseline: u64 = fx.suite.ping_counts().iter().sum();
    drop(fx);

    // Adaptive + hedged: same fabric, same seeded policy.
    let mut fx = build(fast, slow, timeout, 0xFAB);
    fx.suite.set_hedge(true);
    fx.suite.set_hedge_delay(Some(hedge_delay));
    let hedged = run_workload(&mut fx, warmup, reads);
    let pings_hedged: u64 = fx.suite.ping_counts().iter().sum();
    let snap = fx.suite.obs().snapshot();
    let (issued, won, wasted) = (
        snap.counter("suite.hedge.issued"),
        snap.counter("suite.hedge.won"),
        snap.counter("suite.hedge.wasted"),
    );
    drop(fx);

    let speedup = baseline.median() as f64 / hedged.median().max(1) as f64;
    let ping_ratio = pings_hedged as f64 / pings_baseline.max(1) as f64;
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "mode", "median", "mean", "p90", "pings"
    );
    for (name, s, pings) in [
        ("baseline", &baseline, pings_baseline),
        ("hedged", &hedged, pings_hedged),
    ] {
        println!(
            "{:<10} {:>12}us {:>12}us {:>12}us {:>12}",
            name,
            s.median(),
            s.mean(),
            s.percentile(0.9),
            pings
        );
    }
    println!();
    println!("hedges: issued {issued}, won {won}, wasted {wasted}");
    println!("speedup (baseline median / hedged median): {speedup:.2}x");
    println!("ping ratio (hedged / baseline): {ping_ratio:.2}x (cap {MAX_OVERPROVISION}x)");

    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"hedge\",\n  \"mode\": \"{}\",\n",
            "  \"members\": {}, \"read_quorum\": {}, \"write_quorum\": {},\n",
            "  \"fast_hop_us\": {}, \"slow_hop_us\": {}, \"slow_member\": {},\n",
            "  \"flaky_member\": {}, \"drop_prob\": {}, \"timeout_us\": {},\n",
            "  \"hedge_delay_us\": {}, \"timed_reads\": {},\n",
            "  \"baseline\": {},\n  \"hedged\": {},\n",
            "  \"pings_baseline\": {}, \"pings_hedged\": {}, \"ping_ratio\": {:.3},\n",
            "  \"hedges_issued\": {}, \"hedges_won\": {}, \"hedges_wasted\": {},\n",
            "  \"speedup_median\": {:.3}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        MEMBERS,
        READ_QUORUM,
        WRITE_QUORUM,
        fast.as_micros(),
        slow.as_micros(),
        SLOW,
        FLAKY,
        DROP_PROB,
        timeout.as_micros(),
        hedge_delay.as_micros(),
        reads,
        json_samples(&baseline),
        json_samples(&hedged),
        pings_baseline,
        pings_hedged,
        ping_ratio,
        issued,
        won,
        wasted,
        speedup
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_hedge.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {}", path.canonicalize().unwrap_or(path).display()),
        Err(e) => {
            eprintln!("failed to write BENCH_hedge.json: {e}");
            std::process::exit(2);
        }
    }

    if check {
        const GATE: f64 = 2.0;
        let mut ok = true;
        if speedup < GATE {
            eprintln!("FAIL: speedup {speedup:.2}x below the {GATE}x gate");
            ok = false;
        }
        if ping_ratio > MAX_OVERPROVISION {
            eprintln!(
                "FAIL: ping ratio {ping_ratio:.2}x exceeds the {MAX_OVERPROVISION}x \
                 over-provision bound"
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("CHECK PASSED: >= {GATE}x median, pings within {MAX_OVERPROVISION}x");
    }
}
