//! Random vs latency-aware quorum selection on a *skewed* fabric.
//!
//! Weighted voting lets any R members answer a read, so on a fabric where
//! some representatives are slower (distant, loaded), the coordinator is
//! free to prefer the fast ones. `LatencyPolicy` orders candidates by the
//! per-member reply-time EWMAs the obs subsystem records on every ping and
//! data RPC; `RandomPolicy` — the availability-oriented default — keeps
//! drawing slow members into read quorums.
//!
//! The fixture is a 5-member suite (R=2, W=4) where two members sit behind
//! a per-node latency override ([`Network::set_node_latency`]). With R=2
//! out of 5 and 2 slow members, a random pair includes a slow member 70%
//! of the time, so the random read median is slow-bound; the latency
//! policy converges on the three fast members after a couple of
//! self-exploring probe rounds and reads at the fast round-trip.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin latency_policy [-- --quick] [--check]
//! ```
//!
//! `--check` exits nonzero unless (a) the latency policy's read prefix is
//! exactly the fast members and (b) its median lookup beats random by the
//! gate factor. Every run rewrites `BENCH_latency_policy.json` at the repo
//! root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, QuorumPolicy, RandomPolicy, SuiteConfig};
use repdir_core::{Key, QuorumKind, RepId, Value};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir_txn::TxnId;

const MEMBERS: u32 = 5;
const READ_QUORUM: u32 = 2;
const WRITE_QUORUM: u32 = 4;
/// Member indices behind the latency override.
const SLOW: [usize; 2] = [3, 4];

struct Samples {
    us: Vec<u64>,
}

impl Samples {
    fn from_durations(mut ds: Vec<Duration>) -> Self {
        ds.sort();
        Samples {
            us: ds.iter().map(|d| d.as_micros() as u64).collect(),
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        let idx = ((self.us.len() - 1) as f64 * p).round() as usize;
        self.us[idx]
    }

    fn median(&self) -> u64 {
        self.percentile(0.5)
    }

    fn mean(&self) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        self.us.iter().sum::<u64>() / self.us.len() as u64
    }
}

struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    _handles: Vec<ServerHandle>,
}

/// Builds the skewed suite: every hop costs `fast` except messages *to* the
/// [`SLOW`] members' nodes, which cost `slow`.
fn build(fast: Duration, slow: Duration, seed: u64) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(fast),
    });
    for &i in &SLOW {
        net.set_node_latency(NodeId(100 + i as u32), LatencyModel::fixed(slow));
    }
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..MEMBERS {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(Duration::from_secs(10));
        client
            .begin()
            .expect("begin never fails on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(MEMBERS, READ_QUORUM, WRITE_QUORUM)
        .expect("5-2-4 is a valid weighted-voting config");
    let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
        .expect("client count matches config");
    Fixture {
        suite,
        _handles: handles,
    }
}

/// Seeds EWMAs (writes probe W=4 members each; the latency policy explores
/// unsampled members first), then times a read-heavy phase. An untimed
/// write is interleaved every few reads: reads only sample the chosen R
/// members, so a fast member whose EWMA caught a one-off scheduler stall
/// would otherwise never be re-probed and stay exiled. Write waves touch
/// the W=4 best-ranked members, letting a stale EWMA decay back to truth.
fn run_workload(suite: &mut DirSuite<RemoteSessionClient>, warmup: usize, reads: usize) -> Samples {
    for i in 0..warmup {
        let key = Key::from(format!("warm{i:03}").as_str());
        suite.insert(&key, &Value::from("v")).expect("insert");
    }
    let mut times = Vec::new();
    for i in 0..reads {
        if i % 4 == 3 {
            let key = Key::from(format!("warm{:03}", i % warmup).as_str());
            suite.update(&key, &Value::from("v2")).expect("update");
        }
        let key = Key::from(format!("warm{:03}", i % warmup).as_str());
        let t = Instant::now();
        suite.lookup(&key).expect("lookup");
        times.push(t.elapsed());
    }
    Samples::from_durations(times)
}

fn json_samples(s: &Samples) -> String {
    format!(
        r#"{{"median_us": {}, "mean_us": {}, "p90_us": {}}}"#,
        s.median(),
        s.mean(),
        s.percentile(0.9)
    )
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let (fast, slow) = if quick {
        (Duration::from_millis(1), Duration::from_millis(6))
    } else {
        (Duration::from_millis(2), Duration::from_millis(12))
    };
    let warmup = 6;
    let reads = if quick { 16 } else { 40 };

    println!(
        "latency_policy: {MEMBERS} members (R={READ_QUORUM}, W={WRITE_QUORUM}), \
         fast hop {}ms, slow hop {}ms to members {SLOW:?}",
        fast.as_millis(),
        slow.as_millis()
    );
    println!();

    // Random: the seeded default policy the fixture starts with.
    let mut fx = build(fast, slow, 0x5EED);
    let random = run_workload(&mut fx.suite, warmup, reads);
    drop(fx);

    // Latency-aware: same fixture, policy swapped for one reading the
    // suite's own obs-recorded reply EWMAs.
    let mut fx = build(fast, slow, 0x5EED + 1);
    let policy = fx.suite.latency_policy();
    fx.suite.set_policy(Box::new(policy));
    let latency = run_workload(&mut fx.suite, warmup, reads);

    // Where did the EWMAs land, and whom would the policy read from now?
    let ewmas: Vec<u64> = fx
        .suite
        .member_reply_ewmas()
        .iter()
        .map(|e| e.value_us().unwrap_or(0.0).round() as u64)
        .collect();
    let read_prefix: Vec<usize> = fx
        .suite
        .latency_policy()
        .candidates(QuorumKind::Read, MEMBERS as usize, None)
        .into_iter()
        .take(READ_QUORUM as usize)
        .collect();
    drop(fx);

    let speedup = random.median() as f64 / latency.median().max(1) as f64;
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "policy", "median", "mean", "p90"
    );
    for (name, s) in [("random", &random), ("latency", &latency)] {
        println!(
            "{:<10} {:>12}us {:>12}us {:>12}us",
            name,
            s.median(),
            s.mean(),
            s.percentile(0.9)
        );
    }
    println!();
    println!("reply EWMAs (us): {ewmas:?}");
    println!("latency-policy read prefix: {read_prefix:?}  (slow members: {SLOW:?})");
    println!("speedup (random median / latency median): {speedup:.2}x");

    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"latency_policy\",\n  \"mode\": \"{}\",\n",
            "  \"members\": {}, \"read_quorum\": {}, \"write_quorum\": {},\n",
            "  \"fast_hop_us\": {}, \"slow_hop_us\": {}, \"slow_members\": {:?},\n",
            "  \"timed_reads\": {},\n",
            "  \"random\": {},\n  \"latency\": {},\n",
            "  \"reply_ewma_us\": {:?},\n  \"read_prefix\": {:?},\n",
            "  \"speedup_median\": {:.3}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        MEMBERS,
        READ_QUORUM,
        WRITE_QUORUM,
        fast.as_micros(),
        slow.as_micros(),
        SLOW,
        reads,
        json_samples(&random),
        json_samples(&latency),
        ewmas,
        read_prefix,
        speedup
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_latency_policy.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {}", path.canonicalize().unwrap_or(path).display()),
        Err(e) => {
            eprintln!("failed to write BENCH_latency_policy.json: {e}");
            std::process::exit(2);
        }
    }

    if check {
        const GATE: f64 = 2.0;
        let mut ok = true;
        if read_prefix.iter().any(|m| SLOW.contains(m)) {
            eprintln!("FAIL: latency policy still reads from a slow member: {read_prefix:?}");
            ok = false;
        }
        if speedup < GATE {
            eprintln!("FAIL: speedup {speedup:.2}x below the {GATE}x gate");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check passed: reads come from the fast members, >= {GATE}x faster than random");
    }
}
