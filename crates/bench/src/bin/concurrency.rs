//! The concurrency comparison motivating the whole paper (§1/§2): per-range
//! version numbers let transactions modify different entries concurrently,
//! while a directory stored as one Gifford-replicated file serializes every
//! modification behind a single version number.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin concurrency
//! ```

use repdir_workload::{gifford_interleaved_conflicts, repdir_throughput};

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    println!("Part 1: single-version file baseline — interleaved read-modify-write");
    println!("rounds; every client edits a DIFFERENT directory entry, yet they");
    println!("conflict because the whole directory shares one version number.");
    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>16}",
        "clients", "attempts", "conflicts", "conflict rate", "expected (k-1)/k"
    );
    for clients in [1usize, 2, 4, 8, 16] {
        let r = gifford_interleaved_conflicts(clients, 500, 0xC0);
        println!(
            "{:<10} {:>10} {:>10} {:>14.3} {:>16.3}",
            clients,
            r.attempts,
            r.conflicts,
            r.conflict_rate(),
            (clients as f64 - 1.0) / clients as f64
        );
    }

    println!();
    println!("Part 2: the gap-versioned transactional stack (3-2-2, strict 2PL");
    println!("range locks, WAL) under real threads.");
    println!();
    println!(
        "{:<26} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "workload", "threads", "ops", "ops/sec", "lockwaits", "deadlocks"
    );
    for &threads in &[1usize, 2, 4, 8] {
        let r = repdir_throughput(threads, 300, true, 0xC1);
        println!(
            "{:<26} {:>8} {:>12} {:>12.0} {:>10} {:>10}",
            "disjoint key ranges",
            threads,
            r.ops,
            r.ops_per_sec(),
            r.lock_waits,
            r.deadlocks
        );
    }
    for &threads in &[1usize, 2, 4, 8] {
        let r = repdir_throughput(threads, 300, false, 0xC2);
        println!(
            "{:<26} {:>8} {:>12} {:>12.0} {:>10} {:>10}",
            "one hot key (worst case)",
            threads,
            r.ops,
            r.ops_per_sec(),
            r.lock_waits,
            r.deadlocks
        );
    }

    println!();
    println!("Expected shape: disjoint-range writers show ~zero lock waits and");
    println!("throughput that does not degrade with thread count (the paper's");
    println!("concurrency win); hot-key writers queue on the range lock — which");
    println!("is the behaviour a single whole-directory version would impose on");
    println!("EVERY key, not just the hot one.");
}
