//! Regenerates the paper's **Figure 14**: the three deletion statistics for
//! ~100-entry directories under varying suite configurations, 10 000
//! operations each, with uniformly random keys and quorums.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin fig14
//! ```

use repdir_core::suite::SuiteConfig;
use repdir_workload::{analytic_delete_stats, run_sim, SimParams};

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let configs: &[(u32, u32, u32)] = &[
        (1, 1, 1),
        (2, 1, 2),
        (3, 2, 2),
        (3, 1, 3),
        (4, 2, 3),
        (4, 3, 3),
        (4, 1, 4),
        (5, 3, 3),
        (5, 2, 4),
        (5, 1, 5),
        (7, 4, 4),
    ];

    println!("Figure 14: simulation averages, ~100-entry directories, 10 000 ops each");
    println!("(uniform random keys and quorum members; seeds fixed for reproducibility)");
    println!();
    println!(
        "{:<8} {:>24} {:>24} {:>24}",
        "suite", "entries-coalesced", "deletes-coalescing", "inserts-coalescing"
    );
    println!(
        "{:<8} {:>24} {:>24} {:>24}",
        "", "meas. / model", "meas. / model", "meas. / model"
    );
    for &(n, r, w) in configs {
        let config = SuiteConfig::symmetric(n, r, w).expect("legal configuration");
        let label = config.describe();
        let params =
            SimParams::figure14(config, 0x14_000 + n as u64 * 100 + r as u64 * 10 + w as u64);
        let report = run_sim(&params);
        // §5's "simple analytic model", for comparison.
        let model = analytic_delete_stats(n, w, params.update_fraction);
        println!(
            "{:<8} {:>12.2} / {:<9.2} {:>12.2} / {:<9.2} {:>12.2} / {:<9.2}",
            label,
            report.entries_coalesced.mean(),
            model.entries_in_range,
            report.deletions_while_coalescing.mean(),
            model.deletions_while_coalescing,
            report.insertions_while_coalescing.mean(),
            model.insertions_while_coalescing,
        );
    }
    println!();
    println!("Paper's qualitative expectations (§4):");
    println!("  * W = N rows (x-1-x) do no extra work: no ghosts ever form.");
    println!("  * Wider spreads (larger N - W) accumulate more ghosts per delete.");
    println!("  * All averages stay small — the delete overhead 'is low'.");
}
