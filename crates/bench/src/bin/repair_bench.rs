//! Anti-entropy convergence cost vs a naive full-directory copy.
//!
//! The scenario is the one the repair subsystem exists for: a member drops
//! off the fabric, the suite keeps committing through the surviving write
//! quorums, the member comes back — and now holds a directory that is
//! almost entirely correct. Resynchronising it by copying the whole
//! directory pays for every key; walking the summary tree pays only for
//! the buckets that actually diverged, then pulls exactly those.
//!
//! The fixture is a 3-member suite (R=2, W=2) over the simulated network.
//! All three representatives start byte-identical (the state an earlier
//! epoch of quorum writes would leave), member 2 is partitioned, the suite
//! updates ~5% of the keys through the surviving quorum {0, 1}, and the
//! partition heals. Both resync strategies then run against real fabric
//! traffic:
//!
//! * **repair**: a [`Repairer`] walks member 0's summary tree from member
//!   2 and pulls only the mismatched buckets;
//! * **full copy**: every one of the 256 buckets is pulled from member 0
//!   into a fresh representative.
//!
//! Messages are counted by the fabric itself (`NetStats::sent`), so both
//! strategies pay for requests and replies alike. Before resync, a short
//! read pass demonstrates inline read-repair detection: quorum reads that
//! straddle the stale member queue `StaleVote`s and bump
//! `repair.stale_votes_observed`.
//!
//! With `--driver` a third strategy runs on a fresh fixture with the same
//! divergence: post-heal reads straddling the stale member push
//! `StaleVote`s into a [`StaleVoteQueue`], and a [`RepairDriver`] drains
//! them into bucket-targeted pulls — no summary walk at all. Its message
//! count is compared against the summary-sweep cost (what a fixed-interval
//! background sweeper pays per convergence).
//!
//! ```text
//! cargo run --release -p repdir-bench --bin repair_bench [-- --quick] [--check] [--driver]
//! ```
//!
//! `--check` exits nonzero unless summary-tree repair converges the stale
//! member with at least 2x fewer fabric messages than the full copy (and,
//! with `--driver`, unless vote-targeted pulls beat summary sweeping by
//! another 2x). Every run rewrites `BENCH_repair.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, FixedPolicy, RandomPolicy, StaleVoteQueue, SuiteConfig};
use repdir_core::{Key, RepId, UserKey, Value, Version};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_repair::{Pacing, RepairDriver, RepairPeer, Repairer};
use repdir_replica::{
    serve_rep, RemoteRepairPeer, RemoteSessionClient, RepTarget, TransactionalRep,
};
use repdir_txn::TxnId;

const MEMBERS: u32 = 3;
const READ_QUORUM: u32 = 2;
const WRITE_QUORUM: u32 = 2;
/// Member index partitioned during the update burst.
const STALE_MEMBER: usize = 2;

/// Key `i`, spread across summary buckets by its leading byte.
fn key_of(i: usize) -> Key {
    Key::User(UserKey::new(vec![(i % 251) as u8, (i / 251) as u8]))
}

struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    reps: Vec<Arc<TransactionalRep>>,
    net: Arc<Network>,
    rpc: Arc<RpcClient>,
    _handles: Vec<ServerHandle>,
}

/// Builds the networked suite with all representatives pre-loaded with
/// `keys` identical committed entries — the state a prior epoch of quorum
/// writes leaves behind.
fn build(keys: usize, hop: Duration, timeout: Duration, seed: u64) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(hop),
    });
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let mut reps = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..MEMBERS {
        let rep = TransactionalRep::new(RepId(i));
        let seed_txn = TxnId(900 + u64::from(i));
        rep.begin(seed_txn).expect("begin seed txn");
        for k in 0..keys {
            rep.insert(seed_txn, &key_of(k), Version::new(1), &Value::from("v1"))
                .expect("seed insert");
        }
        rep.commit(seed_txn).expect("commit seed txn");
        reps.push(Arc::clone(&rep));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(timeout);
        client.begin().expect("begin on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(MEMBERS, READ_QUORUM, WRITE_QUORUM)
        .expect("3-2-2 is a valid weighted-voting config");
    let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
        .expect("client count matches config");
    Fixture {
        suite,
        reps,
        net,
        rpc,
        _handles: handles,
    }
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval metrics
    // flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let driver_mode = args.iter().any(|a| a == "--driver");

    let keys = if quick { 128 } else { 256 };
    let updates = keys / 20; // ~5% of the directory goes stale
    let (hop, timeout) = if quick {
        (Duration::from_micros(200), Duration::from_millis(20))
    } else {
        (Duration::from_millis(1), Duration::from_millis(40))
    };

    println!(
        "repair_bench: {MEMBERS} members (R={READ_QUORUM}, W={WRITE_QUORUM}), {keys} keys, \
         member {STALE_MEMBER} partitioned for {updates} updates (~{:.0}% stale)",
        updates as f64 / keys as f64 * 100.0
    );
    println!();

    let mut fx = build(keys, hop, timeout, 0x4E7A);

    // Partition the stale member; the suite keeps writing through {0, 1}.
    fx.net.set_node_drop(NodeId(100 + STALE_MEMBER as u32), 1.0);
    for u in 0..updates {
        let k = key_of(u * (keys / updates)); // spread over distinct buckets
        fx.suite
            .update(&k, &Value::from("v2"))
            .expect("update through the surviving write quorum");
    }
    fx.net.set_node_drop(NodeId(100 + STALE_MEMBER as u32), 0.0);

    // Inline read-repair detection: reads that straddle the stale member
    // observe its old votes and queue them for the repair layer.
    for u in 0..updates.min(16) {
        let k = key_of(u * (keys / updates));
        fx.suite.lookup(&k).expect("post-heal lookup");
    }
    let stale_votes = fx.suite.take_stale_votes().len();
    let stale_votes_counter = fx
        .suite
        .obs()
        .snapshot()
        .counter("repair.stale_votes_observed");

    // Release the workload transaction's two-phase locks so repair's
    // internal transactions can read and install.
    for i in 0..MEMBERS as usize {
        fx.suite.member(i).commit().expect("commit workload txn");
    }

    // Strategy 1: summary-tree repair of the stale member from member 0.
    let before = fx.net.stats().sent;
    let t = Instant::now();
    let repairer = Repairer::new(
        Arc::new(RepTarget::new(Arc::clone(&fx.reps[STALE_MEMBER]))),
        vec![Box::new(RemoteRepairPeer::new(
            Arc::clone(&fx.rpc),
            NodeId(100),
        ))],
    );
    let quiesce = repairer.run_until_quiescent(8);
    let repair_elapsed = t.elapsed();
    let repair_msgs = fx.net.stats().sent - before;
    assert!(quiesce.quiescent, "repairer failed to quiesce");
    assert_eq!(
        fx.reps[0].snapshot(),
        fx.reps[STALE_MEMBER].snapshot(),
        "summary-tree repair did not converge the stale member"
    );

    // Strategy 2: the naive baseline — pull all 256 buckets from member 0
    // into a fresh representative, over the same fabric.
    let copy_peer = RemoteRepairPeer::new(Arc::clone(&fx.rpc), NodeId(100));
    let copy_rep = TransactionalRep::new(RepId(9));
    let copy_target = RepTarget::new(Arc::clone(&copy_rep));
    let before = fx.net.stats().sent;
    let t = Instant::now();
    let mut copy_keys = 0u64;
    for bucket in 0..=255u8 {
        let view = copy_peer.pull(bucket).expect("full-copy pull");
        copy_keys += view.entries.len() as u64;
        let local = repdir_repair::BucketView::default();
        let plan = repdir_repair::diff_bucket(bucket, &local, &view);
        repdir_repair::RepairTarget::apply(&copy_target, &plan).expect("full-copy apply");
    }
    let copy_elapsed = t.elapsed();
    let copy_msgs = fx.net.stats().sent - before;
    assert_eq!(
        fx.reps[0].snapshot(),
        copy_rep.snapshot(),
        "full copy did not reproduce member 0"
    );

    // Strategy 3 (`--driver`): stale-vote-targeted pulls by a
    // [`RepairDriver`], on a fresh fixture with identical divergence. The
    // baseline it races is strategy 1 — the cost a fixed-interval
    // background sweeper pays to converge the same member.
    let driver_stats = if driver_mode {
        let mut fx2 = build(keys, hop, timeout, 0x4E7A);
        fx2.net
            .set_node_drop(NodeId(100 + STALE_MEMBER as u32), 1.0);
        for u in 0..updates {
            let k = key_of(u * (keys / updates));
            fx2.suite
                .update(&k, &Value::from("v2"))
                .expect("update through the surviving write quorum");
        }
        fx2.net
            .set_node_drop(NodeId(100 + STALE_MEMBER as u32), 0.0);

        // Route stale votes to a shared queue, then read every updated key
        // through a read quorum pinned to {0, stale}: each divergent key
        // coalesces into one queued vote naming the stale member.
        let queue = Arc::new(StaleVoteQueue::new());
        fx2.suite.set_stale_vote_sink(Some(Arc::clone(&queue)));
        fx2.suite
            .set_policy(Box::new(FixedPolicy::with_order(vec![0, STALE_MEMBER, 1])));
        // The member's availability score is still depressed from the
        // partition, so early reads may hedge past it and settle their
        // quorum on {0, 1}; repeat the pass until every stale key has been
        // read *through* the stale member and voted (votes coalesce, so
        // re-reads never inflate the queue).
        let mut passes = 0;
        while queue.len() < updates {
            for u in 0..updates {
                let k = key_of(u * (keys / updates));
                fx2.suite.lookup(&k).expect("straddling post-heal lookup");
            }
            passes += 1;
            assert!(
                passes < 16,
                "straddling reads never voted all {updates} stale keys ({} queued)",
                queue.len()
            );
        }
        for i in 0..MEMBERS as usize {
            fx2.suite.member(i).commit().expect("commit workload txn");
        }

        let repairer = Repairer::new(
            Arc::new(RepTarget::new(Arc::clone(&fx2.reps[STALE_MEMBER]))),
            vec![Box::new(RemoteRepairPeer::new(
                Arc::clone(&fx2.rpc),
                NodeId(100),
            ))],
        );
        let vote_queue = Arc::clone(&queue);
        let mut driver = RepairDriver::new(repairer, Pacing::default())
            .with_vote_source(Box::new(move || vote_queue.drain_member(STALE_MEMBER)));
        let before = fx2.net.stats().sent;
        let t = Instant::now();
        let tick = driver.drain_and_pull();
        let driver_elapsed = t.elapsed();
        let driver_msgs = fx2.net.stats().sent - before;
        assert_eq!(tick.unrepaired, 0, "driver left voted buckets unrepaired");
        assert_eq!(
            fx2.reps[0].snapshot(),
            fx2.reps[STALE_MEMBER].snapshot(),
            "vote-targeted pulls did not converge the stale member"
        );
        Some((driver_msgs, tick, driver_elapsed))
    } else {
        None
    };

    let msg_ratio = copy_msgs as f64 / repair_msgs.max(1) as f64;
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "strategy", "msgs", "keys moved", "bytes", "elapsed"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}us",
        "repair",
        repair_msgs,
        quiesce.total.keys_pulled,
        quiesce.total.bytes,
        repair_elapsed.as_micros()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}us",
        "full copy",
        copy_msgs,
        copy_keys,
        "-",
        copy_elapsed.as_micros()
    );
    let driver_ratio = driver_stats
        .as_ref()
        .map(|(msgs, _, _)| repair_msgs as f64 / (*msgs).max(1) as f64);
    if let Some((driver_msgs, tick, driver_elapsed)) = &driver_stats {
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>10}us",
            "driver",
            driver_msgs,
            tick.applied.total(),
            "-",
            driver_elapsed.as_micros()
        );
    }
    println!();
    println!("stale votes observed by reads: {stale_votes} (counter {stale_votes_counter})");
    println!("message ratio (full copy / repair): {msg_ratio:.2}x");
    if let (Some(ratio), Some((_, tick, _))) = (driver_ratio, &driver_stats) {
        println!(
            "driver mode: {} votes -> {} buckets -> {} targeted pulls; \
             message ratio (sweep / driver): {ratio:.2}x",
            tick.votes, tick.buckets, tick.pulls
        );
    }

    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"repair\",\n  \"mode\": \"{}\",\n",
            "  \"members\": {}, \"read_quorum\": {}, \"write_quorum\": {},\n",
            "  \"keys\": {}, \"stale_updates\": {}, \"stale_member\": {},\n",
            "  \"repair_msgs\": {}, \"repair_keys_pulled\": {}, \"repair_bytes\": {},\n",
            "  \"repair_elapsed_us\": {}, \"repair_sweeps\": {},\n",
            "  \"fullcopy_msgs\": {}, \"fullcopy_keys\": {}, \"fullcopy_elapsed_us\": {},\n",
            "  \"stale_votes_observed\": {},\n{}",
            "  \"msg_ratio\": {:.3}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        MEMBERS,
        READ_QUORUM,
        WRITE_QUORUM,
        keys,
        updates,
        STALE_MEMBER,
        repair_msgs,
        quiesce.total.keys_pulled,
        quiesce.total.bytes,
        repair_elapsed.as_micros(),
        quiesce.sweeps,
        copy_msgs,
        copy_keys,
        copy_elapsed.as_micros(),
        stale_votes_counter,
        match (&driver_stats, driver_ratio) {
            (Some((driver_msgs, tick, driver_elapsed)), Some(ratio)) => format!(
                concat!(
                    "  \"driver_msgs\": {}, \"driver_votes\": {}, \"driver_buckets\": {},\n",
                    "  \"driver_pulls\": {}, \"driver_elapsed_us\": {}, \"driver_ratio\": {:.3},\n"
                ),
                driver_msgs,
                tick.votes,
                tick.buckets,
                tick.pulls,
                driver_elapsed.as_micros(),
                ratio
            ),
            _ => String::new(),
        },
        msg_ratio
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_repair.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {}", path.canonicalize().unwrap_or(path).display()),
        Err(e) => {
            eprintln!("failed to write BENCH_repair.json: {e}");
            std::process::exit(2);
        }
    }

    if check {
        const GATE: f64 = 2.0;
        if msg_ratio < GATE {
            eprintln!("FAIL: message ratio {msg_ratio:.2}x below the {GATE}x gate");
            std::process::exit(1);
        }
        println!(
            "CHECK PASSED: repair converged with {msg_ratio:.2}x fewer messages (gate {GATE}x)"
        );
        if let Some(ratio) = driver_ratio {
            if ratio < GATE {
                eprintln!("FAIL: driver ratio {ratio:.2}x below the {GATE}x gate");
                std::process::exit(1);
            }
            println!(
                "CHECK PASSED: vote-targeted pulls beat summary sweeping {ratio:.2}x (gate {GATE}x)"
            );
        }
    }
}
