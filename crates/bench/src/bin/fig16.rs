//! Regenerates the paper's **Figure 16** (§5): a 4-2-3 suite with locality
//! — Type A transactions work on the low half of the key space near
//! representatives A1/A2, Type B on the high half near B1/B2. All
//! inquiries should be served locally, and each modification's single
//! non-local write should spread evenly over the two remote
//! representatives.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin fig16
//! ```

use repdir_workload::run_locality;

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let ops = 20_000;
    println!("Figure 16: locality-aware quorum assignment on a 4-2-3 suite");
    println!("reps: A1=0, A2=1 (local to Type A), B1=2, B2=3 (local to Type B)");
    println!("{ops} transactions, half Type A (low keys), half Type B (high keys)");
    println!();
    let report = run_locality(ops, 0x16_000);

    println!("inquiries:      {}", report.inquiries);
    println!("modifications:  {}", report.modifications);
    println!();
    println!(
        "inquiry RPCs:   {:>8} local, {:>8} remote  -> read locality {:.1}%",
        report.local_read_rpcs,
        report.remote_read_rpcs,
        100.0 * report.read_locality()
    );
    println!(
        "write RPCs:     {:>8} local, {:>8} remote",
        report.local_write_rpcs, report.remote_write_rpcs
    );
    println!();
    println!("remote write RPCs per representative (evenness of the non-local write):");
    for (i, count) in report.remote_write_per_member.iter().enumerate() {
        let name = match i {
            0 => "A1",
            1 => "A2",
            2 => "B1",
            _ => "B2",
        };
        println!("  {name}: {count}");
    }
    println!();
    println!("Paper's claims (§5): 'all inquiries can be done locally and the");
    println!("non-local write … is evenly distributed among the remote");
    println!("representatives.'");
}
