//! The §4 message-batching claim, quantified: "if each member of a read
//! quorum sends the results of three successive DirRepPredecessor and
//! DirRepSuccessor operations in a single message, the real predecessor and
//! real successor will often be located using one remote procedure call to
//! each member of the quorum."
//!
//! Sweeps the chain batch size and reports neighbor RPCs per delete.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin batching
//! ```

use repdir_core::suite::SuiteConfig;
use repdir_workload::{run_sim, SimParams};

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    println!("Neighbor-RPC cost per delete vs chain batch size");
    println!("(3-2-2 suite, ~100 entries, 10 000 ops, random quorums)");
    println!();
    println!(
        "{:<8} {:>22} {:>14} {:>26}",
        "batch", "neighbor RPCs/delete", "max", "P(one round per member)"
    );
    for batch in [1usize, 2, 3, 4, 6] {
        let mut params =
            SimParams::figure14(SuiteConfig::symmetric(3, 2, 2).expect("legal"), 0xBA7C);
        params.neighbor_batch = batch;
        let report = run_sim(&params);
        println!(
            "{:<8} {:>22.3} {:>14} {:>26}",
            batch,
            report.neighbor_rpcs.mean(),
            report.neighbor_rpcs.max() as u64,
            format!("{:.4}", fraction_minimal(&report))
        );
    }
    println!();
    println!("The paper's suggestion (batch = 3) should bring the average to");
    println!("within a whisker of the 4-RPC floor (2 members x pred + succ),");
    println!("i.e. 'one remote procedure call to each member of the quorum'.");
}

/// Fraction of deletes that used the minimal 4 chain RPCs (2 quorum
/// members x {pred, succ}) — reconstructed from the mean and max assuming
/// the two-point distribution is dominated by the floor. For exact
/// reporting we re-run with a histogram; here the RunningStat suffices to
/// show the trend.
fn fraction_minimal(report: &repdir_workload::SimReport) -> f64 {
    // mean = 4 * p + above * (1 - p) is not invertible without `above`;
    // report the mean-over-floor ratio instead (1.0 = all minimal).
    4.0 / report.neighbor_rpcs.mean().max(4.0)
}
