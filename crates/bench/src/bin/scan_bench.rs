//! Session quorums + batched envelopes vs the per-hop baseline on `scan`.
//!
//! The per-hop scan runs one full `real_successor` search per entry: collect
//! a read quorum (one ping wave), refill neighbor chains (one data wave),
//! and look the candidate up (another data wave) — roughly three round-trips
//! per entry on a uniform fabric. The session scan collects its quorum once
//! ([`QuorumSession`](repdir_core::QuorumSession)), holds it across the
//! whole walk, and packs each hop's candidate lookup plus chain prefetch
//! into one `Batch` envelope per member — roughly one round-trip per entry.
//!
//! The fixture is a 3-member suite (R=2, W=2) of networked transactional
//! representatives behind a fixed per-message latency, scanning a directory
//! of `ENTRIES` entries. Both modes run on the same populated suite; the
//! fabric's `sent` counter additionally shows the message-count drop.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin scan_bench [-- --quick] [--check]
//! ```
//!
//! `--check` exits nonzero unless the session scan's median beats the
//! per-hop baseline by the gate factor (the `scripts/check.sh` perf gate).
//! Every run rewrites `BENCH_scan.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, RandomPolicy, SuiteConfig};
use repdir_core::{Key, RepId, Value};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir_txn::TxnId;

const MEMBERS: u32 = 3;
const READ_QUORUM: u32 = 2;
const WRITE_QUORUM: u32 = 2;
const ENTRIES: usize = 64;

struct Samples {
    us: Vec<u64>,
}

impl Samples {
    fn from_durations(mut ds: Vec<Duration>) -> Self {
        ds.sort();
        Samples {
            us: ds.iter().map(|d| d.as_micros() as u64).collect(),
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        let idx = ((self.us.len() - 1) as f64 * p).round() as usize;
        self.us[idx]
    }

    fn median(&self) -> u64 {
        self.percentile(0.5)
    }

    fn mean(&self) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        self.us.iter().sum::<u64>() / self.us.len() as u64
    }
}

struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    net: Arc<Network>,
    _handles: Vec<ServerHandle>,
}

fn build(hop: Duration, seed: u64) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(hop),
    });
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..MEMBERS {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(Duration::from_secs(10));
        client
            .begin()
            .expect("begin never fails on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(MEMBERS, READ_QUORUM, WRITE_QUORUM)
        .expect("3-2-2 is a valid weighted-voting config");
    let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
        .expect("client count matches config");
    Fixture {
        suite,
        net,
        _handles: handles,
    }
}

/// Times `scans` full scans in the suite's current session mode, returning
/// the samples and the fabric messages sent per scan.
fn run_scans(fx: &mut Fixture, scans: usize) -> (Samples, u64) {
    let sent_before = fx.net.stats().sent;
    let mut times = Vec::new();
    for _ in 0..scans {
        let t = Instant::now();
        let listed = fx.suite.scan().expect("scan");
        times.push(t.elapsed());
        assert_eq!(listed.len(), ENTRIES, "scan must list every entry");
    }
    let sent = fx.net.stats().sent - sent_before;
    (Samples::from_durations(times), sent / scans as u64)
}

fn json_samples(s: &Samples) -> String {
    format!(
        r#"{{"median_us": {}, "mean_us": {}, "p90_us": {}}}"#,
        s.median(),
        s.mean(),
        s.percentile(0.9)
    )
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let hop = if quick {
        Duration::from_micros(500)
    } else {
        Duration::from_millis(1)
    };
    let scans = if quick { 3 } else { 5 };

    println!(
        "scan_bench: {MEMBERS} members (R={READ_QUORUM}, W={WRITE_QUORUM}), \
         {ENTRIES} entries, {}us per message hop",
        hop.as_micros()
    );
    println!();

    let mut fx = build(hop, 0x5CA7);
    for i in 0..ENTRIES {
        let key = Key::from(format!("entry{i:03}").as_str());
        fx.suite.insert(&key, &Value::from("v")).expect("insert");
    }

    // Per-hop baseline: fresh quorum and separate lookup round-trips for
    // every entry.
    fx.suite.set_session_reuse(false);
    let (baseline, baseline_msgs) = run_scans(&mut fx, scans);

    // Session + batched envelopes on the identical directory.
    fx.suite.set_session_reuse(true);
    let (session, session_msgs) = run_scans(&mut fx, scans);

    let snap = fx.suite.obs().snapshot();
    let reuse = snap.counter("suite.session.reuse");
    let revalidate = snap.counter("suite.session.revalidate");
    drop(fx);

    let speedup = baseline.median() as f64 / session.median().max(1) as f64;
    let msg_ratio = baseline_msgs as f64 / session_msgs.max(1) as f64;
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>16}",
        "mode", "median", "mean", "p90", "fabric msgs"
    );
    for (name, s, msgs) in [
        ("per-hop", &baseline, baseline_msgs),
        ("session", &session, session_msgs),
    ] {
        println!(
            "{:<10} {:>12}us {:>12}us {:>12}us {:>16}",
            name,
            s.median(),
            s.mean(),
            s.percentile(0.9),
            msgs
        );
    }
    println!();
    println!("session reuse hits: {reuse}, re-validations: {revalidate}");
    println!("speedup (per-hop median / session median): {speedup:.2}x");
    println!("fabric message reduction: {msg_ratio:.2}x fewer messages per scan");

    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"scan\",\n  \"mode\": \"{}\",\n",
            "  \"members\": {}, \"read_quorum\": {}, \"write_quorum\": {},\n",
            "  \"entries\": {}, \"hop_us\": {}, \"scans\": {},\n",
            "  \"per_hop\": {},\n  \"session\": {},\n",
            "  \"fabric_msgs_per_scan\": {{\"per_hop\": {}, \"session\": {}}},\n",
            "  \"session_reuse\": {}, \"session_revalidate\": {},\n",
            "  \"msg_ratio\": {:.3},\n  \"speedup_median\": {:.3}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        MEMBERS,
        READ_QUORUM,
        WRITE_QUORUM,
        ENTRIES,
        hop.as_micros(),
        scans,
        json_samples(&baseline),
        json_samples(&session),
        baseline_msgs,
        session_msgs,
        reuse,
        revalidate,
        msg_ratio,
        speedup
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scan.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {}", path.canonicalize().unwrap_or(path).display()),
        Err(e) => {
            eprintln!("failed to write BENCH_scan.json: {e}");
            std::process::exit(2);
        }
    }

    if check {
        const GATE: f64 = 2.0;
        let mut ok = true;
        if speedup < GATE {
            eprintln!("FAIL: speedup {speedup:.2}x below the {GATE}x gate");
            ok = false;
        }
        if revalidate != 0 {
            eprintln!("FAIL: {revalidate} re-validations on a failure-free fabric");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check passed: session scan >= {GATE}x faster than per-hop, no re-validations");
    }
}
