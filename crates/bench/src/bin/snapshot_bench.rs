//! Streamed snapshot catch-up vs per-bucket repair pulls for a
//! far-diverged member.
//!
//! Per-bucket anti-entropy is the right tool when a handful of buckets
//! diverged: two messages per dirty bucket, nothing for the clean ones.
//! But a member that missed a *long* outage has most of its buckets dirty,
//! and the per-bucket protocol pays its two messages per bucket — up to
//! 512 messages for a 256-bucket walk — when a single resumable stream
//! could carry the same entries in a few bounded frames.
//!
//! The fixture is the repair bench's: a 3-member suite (R=2, W=2) over the
//! simulated network, all representatives byte-identical, member 2
//! partitioned while the surviving quorum {0, 1} updates more than half
//! the keys and deletes a slice of them — ~70% of the directory stale (the
//! full run dirties ~70% of the 256 summary buckets, the quick run ~35%).
//! Two identically-diverged fixtures then race:
//!
//! * **bucket pulls**: every one of the 256 buckets is pulled from member
//!   0 and diffed/applied into the stale member (what the repair layer's
//!   sweep degenerates to at this divergence);
//! * **snapshot**: a [`SnapshotInstaller`] streams member 0's manifest and
//!   chunked frames into the stale member through the same guarded install
//!   path, then a summary sweep verifies there is nothing left to mop up.
//!
//! Messages are counted by the fabric itself (`NetStats::sent`), so both
//! strategies pay for requests and replies alike.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin snapshot_bench [-- --quick] [--check]
//! ```
//!
//! `--check` exits nonzero unless the snapshot stream converges the stale
//! member with at least 2x fewer fabric messages than the 256 bucket
//! pulls. Every run rewrites `BENCH_snapshot.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, RandomPolicy, SuiteConfig};
use repdir_core::{Key, RepId, UserKey, Value, Version};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_repair::{CatchupStream, RepairPeer, RepairTarget, Repairer};
use repdir_replica::{
    serve_rep, RemoteRepairPeer, RemoteSessionClient, RemoteSnapshotPeer, RepTarget,
    TransactionalRep,
};
use repdir_snapshot::SnapshotInstaller;
use repdir_txn::TxnId;

const MEMBERS: u32 = 3;
const READ_QUORUM: u32 = 2;
const WRITE_QUORUM: u32 = 2;
/// Member index partitioned during the update burst.
const STALE_MEMBER: usize = 2;

/// Key `i`, spread across summary buckets by its leading byte.
fn key_of(i: usize) -> Key {
    Key::User(UserKey::new(vec![(i % 251) as u8, (i / 251) as u8]))
}

struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    reps: Vec<Arc<TransactionalRep>>,
    net: Arc<Network>,
    rpc: Arc<RpcClient>,
    _handles: Vec<ServerHandle>,
}

/// Builds the networked suite with all representatives pre-loaded with
/// `keys` identical committed entries.
fn build(keys: usize, hop: Duration, timeout: Duration, seed: u64) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(hop),
    });
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let mut reps = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..MEMBERS {
        let rep = TransactionalRep::new(RepId(i));
        let seed_txn = TxnId(900 + u64::from(i));
        rep.begin(seed_txn).expect("begin seed txn");
        for k in 0..keys {
            rep.insert(seed_txn, &key_of(k), Version::new(1), &Value::from("v1"))
                .expect("seed insert");
        }
        rep.commit(seed_txn).expect("commit seed txn");
        reps.push(Arc::clone(&rep));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(timeout);
        // A begin is idempotent, so a scheduler hiccup stretching one
        // round-trip past the RPC timeout is worth a couple of retries
        // rather than a flaky fixture.
        retry(|| client.begin(), "begin on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(MEMBERS, READ_QUORUM, WRITE_QUORUM)
        .expect("3-2-2 is a valid weighted-voting config");
    let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
        .expect("client count matches config");
    Fixture {
        suite,
        reps,
        net,
        rpc,
        _handles: handles,
    }
}

/// Retries `op` a few times before giving up: the fixture runs real RPC
/// timeouts over the simulated fabric, and a single OS-scheduler stall can
/// push an otherwise healthy round-trip past the deadline. Every retried
/// operation here is idempotent for the fixture's purposes (a re-driven
/// update or delete just re-commits the same fact at a fresh version).
fn retry<T, E: std::fmt::Debug>(mut op: impl FnMut() -> Result<T, E>, what: &str) -> T {
    let mut last = None;
    for _ in 0..8 {
        match op() {
            Ok(v) => return v,
            Err(e) => last = Some(e),
        }
    }
    panic!("{what}: {last:?}");
}

/// Partitions the stale member and pushes the divergence through the
/// surviving quorum: updates on `updates` keys, deletes on `deletes` more.
fn diverge(fx: &mut Fixture, updates: usize, deletes: usize) {
    fx.net.set_node_drop(NodeId(100 + STALE_MEMBER as u32), 1.0);
    for u in 0..updates {
        retry(
            || fx.suite.update(&key_of(u), &Value::from("v2")),
            "update through the surviving write quorum",
        );
    }
    for d in 0..deletes {
        retry(
            || fx.suite.delete(&key_of(updates + d)),
            "delete through the surviving write quorum",
        );
    }
    fx.net.set_node_drop(NodeId(100 + STALE_MEMBER as u32), 0.0);
    // Release the workload transaction's two-phase locks so repair's
    // internal transactions can read and install.
    for i in 0..MEMBERS as usize {
        retry(|| fx.suite.member(i).commit(), "commit workload txn");
    }
}

/// Number of summary buckets on which the two representatives disagree
/// (computed in-process; costs no fabric messages).
fn divergent_buckets(a: &TransactionalRep, b: &TransactionalRep) -> usize {
    let mut dirty = 0;
    for g in 0..16u8 {
        let da = a.summary_children(1, g).expect("summary of healthy rep");
        let db = b.summary_children(1, g).expect("summary of healthy rep");
        dirty += da.iter().zip(&db).filter(|(x, y)| x != y).count();
    }
    dirty
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval metrics
    // flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let keys = if quick { 128 } else { 256 };
    let updates = keys * 6 / 10; // 60% of the directory goes stale
    let deletes = keys / 10; // and another 10% disappears entirely
    let (hop, timeout) = if quick {
        (Duration::from_micros(200), Duration::from_millis(20))
    } else {
        (Duration::from_millis(1), Duration::from_millis(40))
    };

    println!(
        "snapshot_bench: {MEMBERS} members (R={READ_QUORUM}, W={WRITE_QUORUM}), {keys} keys, \
         member {STALE_MEMBER} partitioned for {updates} updates + {deletes} deletes \
         (~{:.0}% stale)",
        (updates + deletes) as f64 / keys as f64 * 100.0
    );
    println!();

    // Strategy 1: the per-bucket walk — pull all 256 buckets from member 0
    // and diff/apply each into the stale member.
    let mut fx1 = build(keys, hop, timeout, 0x54A9);
    diverge(&mut fx1, updates, deletes);
    let dirty = divergent_buckets(&fx1.reps[0], &fx1.reps[STALE_MEMBER]);
    let pull_peer = RemoteRepairPeer::new(Arc::clone(&fx1.rpc), NodeId(100));
    let pull_target = RepTarget::new(Arc::clone(&fx1.reps[STALE_MEMBER]));
    let before = fx1.net.stats().sent;
    let t = Instant::now();
    let mut pull_keys = 0u64;
    for bucket in 0..=255u8 {
        let view = pull_peer.pull(bucket).expect("bucket pull");
        pull_keys += view.entries.len() as u64;
        let local = RepairTarget::bucket(&pull_target, bucket).expect("local bucket view");
        let plan = repdir_repair::diff_bucket(bucket, &local, &view);
        RepairTarget::apply(&pull_target, &plan).expect("bucket apply");
    }
    let pull_elapsed = t.elapsed();
    let pull_msgs = fx1.net.stats().sent - before;
    assert_eq!(
        fx1.reps[0].snapshot(),
        fx1.reps[STALE_MEMBER].snapshot(),
        "per-bucket pulls did not converge the stale member"
    );

    // Strategy 2: the snapshot stream, on an identically-diverged fixture.
    let mut fx2 = build(keys, hop, timeout, 0x54A9);
    diverge(&mut fx2, updates, deletes);
    let target: Arc<dyn RepairTarget> =
        Arc::new(RepTarget::new(Arc::clone(&fx2.reps[STALE_MEMBER])));
    let mut installer = SnapshotInstaller::new(vec![Box::new(RemoteSnapshotPeer::new(
        Arc::clone(&fx2.rpc),
        NodeId(100),
    ))]);
    let before = fx2.net.stats().sent;
    let t = Instant::now();
    let stats = installer.stream(0, &target).expect("snapshot stream");
    // The driver's post-install mop-up: a summary sweep confirming the
    // stream left nothing behind (its cost is part of the strategy).
    let repairer = Repairer::new(
        Arc::clone(&target),
        vec![Box::new(RemoteRepairPeer::new(
            Arc::clone(&fx2.rpc),
            NodeId(100),
        ))],
    );
    let sweep = repairer.run_sweep();
    let snap_elapsed = t.elapsed();
    let snap_msgs = fx2.net.stats().sent - before;
    assert!(stats.root_matched, "manifest digest mismatch after install");
    assert_eq!(sweep.mismatched_buckets, 0, "stream left dirty buckets");
    assert_eq!(
        fx2.reps[0].snapshot(),
        fx2.reps[STALE_MEMBER].snapshot(),
        "snapshot stream did not converge the stale member"
    );

    let msg_ratio = pull_msgs as f64 / snap_msgs.max(1) as f64;
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "strategy", "msgs", "keys moved", "bytes", "elapsed"
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}us",
        "bucket pulls",
        pull_msgs,
        pull_keys,
        "-",
        pull_elapsed.as_micros()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}us",
        "snapshot",
        snap_msgs,
        stats.entries,
        stats.bytes,
        snap_elapsed.as_micros()
    );
    println!();
    println!(
        "divergent buckets: {dirty}/256 ({:.0}%), snapshot frames: {} ({} installs applied)",
        dirty as f64 / 256.0 * 100.0,
        stats.chunks,
        stats.applied.total()
    );
    println!("message ratio (bucket pulls / snapshot): {msg_ratio:.2}x");

    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"snapshot\",\n  \"mode\": \"{}\",\n",
            "  \"members\": {}, \"read_quorum\": {}, \"write_quorum\": {},\n",
            "  \"keys\": {}, \"stale_updates\": {}, \"stale_deletes\": {},\n",
            "  \"divergent_buckets\": {},\n",
            "  \"pull_msgs\": {}, \"pull_keys\": {}, \"pull_elapsed_us\": {},\n",
            "  \"snapshot_msgs\": {}, \"snapshot_chunks\": {}, \"snapshot_entries\": {},\n",
            "  \"snapshot_bytes\": {}, \"snapshot_installs\": {}, \"snapshot_elapsed_us\": {},\n",
            "  \"msg_ratio\": {:.3}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        MEMBERS,
        READ_QUORUM,
        WRITE_QUORUM,
        keys,
        updates,
        deletes,
        dirty,
        pull_msgs,
        pull_keys,
        pull_elapsed.as_micros(),
        snap_msgs,
        stats.chunks,
        stats.entries,
        stats.bytes,
        stats.applied.total(),
        snap_elapsed.as_micros(),
        msg_ratio
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_snapshot.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {}", path.canonicalize().unwrap_or(path).display()),
        Err(e) => {
            eprintln!("failed to write BENCH_snapshot.json: {e}");
            std::process::exit(2);
        }
    }

    if check {
        const GATE: f64 = 2.0;
        if msg_ratio < GATE {
            eprintln!("FAIL: message ratio {msg_ratio:.2}x below the {GATE}x gate");
            std::process::exit(1);
        }
        println!(
            "CHECK PASSED: snapshot converged with {msg_ratio:.2}x fewer messages (gate {GATE}x)"
        );
    }
}
