//! Availability of reads and writes as a function of per-replica
//! availability — the quorum-tunability claims of §1/§2/§5, with
//! unanimous update as the degenerate comparison and an empirical
//! cross-check against the running system.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin availability
//! ```

use repdir_core::suite::SuiteConfig;
use repdir_workload::{
    empirical_availability, suite_availability, unanimous_availability, SuiteDirectory,
};

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let ps = [0.5, 0.8, 0.9, 0.95, 0.99];
    let configs: &[(u32, u32, u32)] = &[(3, 2, 2), (3, 1, 3), (5, 3, 3), (5, 2, 4), (5, 1, 5)];

    println!("Analytic read/write availability (closed form, independent failures)");
    println!();
    print!("{:<22}", "strategy");
    for p in ps {
        print!("  p={p:<12}");
    }
    println!();
    for &(n, r, w) in configs {
        let config = SuiteConfig::symmetric(n, r, w).expect("legal");
        print!("{:<22}", format!("suite {}", config.describe()));
        for p in ps {
            let (ra, wa) = suite_availability(&config, p);
            print!("  R{ra:.4}/W{wa:.4}");
        }
        println!();
    }
    for n in [3u32, 5] {
        print!("{:<22}", format!("unanimous n={n}"));
        for p in ps {
            let (ra, wa) = unanimous_availability(n, p);
            print!("  R{ra:.4}/W{wa:.4}");
        }
        println!();
    }

    println!();
    println!("Empirical cross-check: 3-2-2 suite, 20 000 ops per cell,");
    println!("replicas independently up with probability p before each op");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "p", "read meas.", "read exact", "write meas.", "write exact"
    );
    for p in ps {
        let cfg = SuiteConfig::symmetric(3, 2, 2).expect("legal");
        let (r_exact, w_exact) = suite_availability(&cfg, p);
        let mut dir = SuiteDirectory::new(cfg.clone(), 0xA11);
        let read = empirical_availability(
            &mut dir,
            |d, i, up| d.set_available(i, up),
            3,
            p,
            true,
            20_000,
            1,
        );
        let mut dir = SuiteDirectory::new(cfg, 0xA12);
        let write = empirical_availability(
            &mut dir,
            |d, i, up| d.set_available(i, up),
            3,
            p,
            false,
            20_000,
            2,
        );
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            p,
            read.availability(),
            r_exact,
            write.availability(),
            w_exact
        );
    }

    println!();
    println!("Takeaways matching the paper: quorum sizes trade read vs write");
    println!("availability (compare 3-2-2 with 3-1-3); unanimous update's write");
    println!("availability collapses as replicas are added; a 3-2-2 suite");
    println!("tolerates any single failure for both reads and writes.");
}
