//! Bulk insert on a session quorum vs the per-key baseline.
//!
//! The per-key path pays one write-quorum collection (a ping wave) plus a
//! discovery lookup wave and an insert wave for every key — roughly three
//! round-trips per key on a uniform fabric. `DirSuite::insert_many` collects
//! the read and write quorums once ([`QuorumSession`](repdir_core::QuorumSession)),
//! holds them across the whole batch, and packs each chunk's discovery
//! lookups and insert writes into one `Batch` envelope per member — O(N/chunk)
//! fabric envelopes for an N-key ingest.
//!
//! The fixture is a 3-member suite (R=2, W=2) of networked transactional
//! representatives behind a fixed per-message latency, ingesting `KEYS`
//! fresh keys per round. Both modes run on the same fabric; the fabric's
//! `sent` counter additionally shows the message-count drop.
//!
//! ```text
//! cargo run --release -p repdir-bench --bin ingest_bench [-- --quick] [--check]
//! ```
//!
//! `--check` exits nonzero unless bulk ingest's median beats the per-key
//! baseline by the gate factor on BOTH wall time and fabric messages (the
//! `scripts/check.sh` perf gate). Every run rewrites `BENCH_ingest.json` at
//! the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::suite::{DirSuite, RandomPolicy, SuiteConfig};
use repdir_core::{Key, RepId, Value};
use repdir_net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir_replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir_txn::TxnId;

const MEMBERS: u32 = 3;
const READ_QUORUM: u32 = 2;
const WRITE_QUORUM: u32 = 2;
const KEYS: usize = 64;

struct Samples {
    us: Vec<u64>,
}

impl Samples {
    fn from_durations(mut ds: Vec<Duration>) -> Self {
        ds.sort();
        Samples {
            us: ds.iter().map(|d| d.as_micros() as u64).collect(),
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        let idx = ((self.us.len() - 1) as f64 * p).round() as usize;
        self.us[idx]
    }

    fn median(&self) -> u64 {
        self.percentile(0.5)
    }

    fn mean(&self) -> u64 {
        if self.us.is_empty() {
            return 0;
        }
        self.us.iter().sum::<u64>() / self.us.len() as u64
    }
}

struct Fixture {
    suite: DirSuite<RemoteSessionClient>,
    net: Arc<Network>,
    _handles: Vec<ServerHandle>,
}

fn build(hop: Duration, seed: u64) -> Fixture {
    let net = Arc::new(Network::new(seed));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(hop),
    });
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    for i in 0..MEMBERS {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut client =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        client.set_timeout(Duration::from_secs(10));
        client
            .begin()
            .expect("begin never fails on a healthy fabric");
        clients.push(client);
    }
    let config = SuiteConfig::symmetric(MEMBERS, READ_QUORUM, WRITE_QUORUM)
        .expect("3-2-2 is a valid weighted-voting config");
    let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
        .expect("client count matches config");
    Fixture {
        suite,
        net,
        _handles: handles,
    }
}

/// Times `rounds` ingests of `KEYS` fresh keys each (key sets are disjoint
/// per round and per mode, so every insert is a create), returning the
/// samples and the fabric messages sent per ingest.
fn run_ingests(fx: &mut Fixture, rounds: usize, tag: &str) -> (Samples, u64) {
    let sent_before = fx.net.stats().sent;
    let mut times = Vec::new();
    for r in 0..rounds {
        let entries: Vec<(Key, Value)> = (0..KEYS)
            .map(|i| {
                (
                    Key::from(format!("{tag}{r:02}k{i:03}").as_str()),
                    Value::from("v"),
                )
            })
            .collect();
        let t = Instant::now();
        let out = fx.suite.insert_many(&entries).expect("ingest");
        times.push(t.elapsed());
        assert_eq!(out.versions.len(), KEYS, "ingest must write every key");
    }
    let sent = fx.net.stats().sent - sent_before;
    (Samples::from_durations(times), sent / rounds as u64)
}

fn json_samples(s: &Samples) -> String {
    format!(
        r#"{{"median_us": {}, "mean_us": {}, "p90_us": {}}}"#,
        s.median(),
        s.mean(),
        s.percentile(0.9)
    )
}

fn main() {
    // `REPDIR_OBS_FLUSH=stderr|json|<path>` attaches an interval
    // metrics flusher to the global registry for the whole run.
    let _flush = repdir_obs::Flusher::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    let hop = if quick {
        Duration::from_micros(500)
    } else {
        Duration::from_millis(1)
    };
    let rounds = if quick { 3 } else { 5 };

    println!(
        "ingest_bench: {MEMBERS} members (R={READ_QUORUM}, W={WRITE_QUORUM}), \
         {KEYS}-key ingest, {}us per message hop",
        hop.as_micros()
    );
    println!();

    let mut fx = build(hop, 0x1A9E);

    // Per-key baseline: with session reuse off, insert_many degrades to the
    // per-key loop — fresh quorum, discovery, and write wave for every key.
    fx.suite.set_session_reuse(false);
    let (baseline, baseline_msgs) = run_ingests(&mut fx, rounds, "b");

    // Session + batched write envelopes on the identical fabric.
    fx.suite.set_session_reuse(true);
    let (bulk, bulk_msgs) = run_ingests(&mut fx, rounds, "s");

    let snap = fx.suite.obs().snapshot();
    let reuse = snap.counter("suite.session.reuse");
    let revalidate = snap.counter("suite.session.revalidate");
    let resumed = snap.counter("suite.bulk.resumed");
    drop(fx);

    let speedup = baseline.median() as f64 / bulk.median().max(1) as f64;
    let msg_ratio = baseline_msgs as f64 / bulk_msgs.max(1) as f64;
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>16}",
        "mode", "median", "mean", "p90", "fabric msgs"
    );
    for (name, s, msgs) in [
        ("per-key", &baseline, baseline_msgs),
        ("bulk", &bulk, bulk_msgs),
    ] {
        println!(
            "{:<10} {:>12}us {:>12}us {:>12}us {:>16}",
            name,
            s.median(),
            s.mean(),
            s.percentile(0.9),
            msgs
        );
    }
    println!();
    println!(
        "session reuse hits: {reuse}, re-validations: {revalidate}, resumed batches: {resumed}"
    );
    println!("speedup (per-key median / bulk median): {speedup:.2}x");
    println!("fabric message reduction: {msg_ratio:.2}x fewer messages per ingest");

    let doc = format!(
        concat!(
            "{{\n  \"bench\": \"ingest\",\n  \"mode\": \"{}\",\n",
            "  \"members\": {}, \"read_quorum\": {}, \"write_quorum\": {},\n",
            "  \"keys\": {}, \"hop_us\": {}, \"rounds\": {},\n",
            "  \"per_key\": {},\n  \"bulk\": {},\n",
            "  \"fabric_msgs_per_ingest\": {{\"per_key\": {}, \"bulk\": {}}},\n",
            "  \"session_reuse\": {}, \"session_revalidate\": {}, \"bulk_resumed\": {},\n",
            "  \"msg_ratio\": {:.3},\n  \"speedup_median\": {:.3}\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        MEMBERS,
        READ_QUORUM,
        WRITE_QUORUM,
        KEYS,
        hop.as_micros(),
        rounds,
        json_samples(&baseline),
        json_samples(&bulk),
        baseline_msgs,
        bulk_msgs,
        reuse,
        revalidate,
        resumed,
        msg_ratio,
        speedup
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ingest.json");
    match std::fs::write(&path, doc) {
        Ok(()) => println!("\nwrote {}", path.canonicalize().unwrap_or(path).display()),
        Err(e) => {
            eprintln!("failed to write BENCH_ingest.json: {e}");
            std::process::exit(2);
        }
    }

    if check {
        const GATE: f64 = 2.0;
        let mut ok = true;
        if speedup < GATE {
            eprintln!("FAIL: speedup {speedup:.2}x below the {GATE}x gate");
            ok = false;
        }
        if msg_ratio < GATE {
            eprintln!("FAIL: message ratio {msg_ratio:.2}x below the {GATE}x gate");
            ok = false;
        }
        if revalidate != 0 {
            eprintln!("FAIL: {revalidate} re-validations on a failure-free fabric");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "check passed: bulk ingest >= {GATE}x faster and >= {GATE}x fewer messages than per-key"
        );
    }
}
