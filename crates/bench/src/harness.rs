//! A small self-timed benchmark harness with a Criterion-shaped surface.
//!
//! The workspace builds fully offline with no external crates, so the
//! Criterion dependency was replaced by this module. It reproduces the
//! subset of the API our benches use — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a plain calibrate-warmup-sample
//! measurement loop instead of Criterion's statistical machinery.
//!
//! Measurement model: each sample runs the routine enough iterations to
//! take roughly [`TARGET_SAMPLE`], and the reported figure is nanoseconds
//! per iteration. We print min / median / max over the collected samples;
//! the median is the headline number. Results go to stdout, one line per
//! benchmark, so `cargo bench -p repdir-bench` output is greppable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample wall-clock target used by iteration-count calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// Hard cap on iterations per sample, so nanosecond-scale routines do not
/// spin for millions of iterations during calibration overshoot.
const MAX_ITERS_PER_SAMPLE: u64 = 1_000_000;

/// Number of untimed warmup samples before measurement begins.
const WARMUP_SAMPLES: u64 = 3;

/// Top-level benchmark driver, analogous to `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size;
        run_one(&id.into().id, samples, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group; the printed label is
    /// `group_name/benchmark_id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, samples, &mut f);
        self
    }

    /// Ends the group. Present for Criterion compatibility; all output has
    /// already been emitted by the time this is called.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, printed as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Handed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Calibrates an iteration count, warms up, then collects timed
    /// samples of `routine`. Return values are passed through
    /// [`std::hint::black_box`] so the routine is not optimized away.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let sample_count = self.samples.capacity().max(1) as u64;

        // Calibration: time a single run, then pick an iteration count
        // that makes one sample last roughly TARGET_SAMPLE.
        let start = Instant::now();
        std::hint::black_box(routine());
        let single = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / single.as_nanos())
            .clamp(1, MAX_ITERS_PER_SAMPLE as u128) as u64;

        for _ in 0..WARMUP_SAMPLES * iters {
            std::hint::black_box(routine());
        }

        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_one(label: &str, sample_count: usize, f: &mut impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_count),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples: closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    println!(
        "{label:<50} median {} (min {}, max {}, {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:7.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:7.2} us/iter", ns / 1_000.0)
    } else {
        format!("{:7.2} ms/iter", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` entry point for one or more benchmark groups,
/// mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lookup", 100).id, "lookup/100");
        assert_eq!(BenchmarkId::from_parameter("3-2-2").id, "3-2-2");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(1u64 + 2));
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_sample_size_overrides_criterion() {
        let mut c = Criterion::default().sample_size(50);
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut seen = 0usize;
        group.bench_function("inner", |b| {
            b.iter(|| std::hint::black_box(0u8));
            seen = b.samples.len();
        });
        group.finish();
        assert_eq!(seen, 4);
    }
}
