//! # repdir-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation; see the `fig14`, `fig15`, `fig16`, `availability`,
//! `concurrency`, and `ablation_quorum` binaries and the self-timed
//! benches (`suite_ops`, `gapmap`, `rangelock`, `storage`) built on
//! [`harness`]. `EXPERIMENTS.md` at the workspace root records
//! paper-vs-measured results.

pub mod harness;

pub use harness::{Bencher, BenchmarkGroup, BenchmarkId, Criterion};
pub use repdir_workload as workload;
