//! Pointwise merge of two bucket views under the paper's version rule.
//!
//! A [`BucketView`] is one representative's full knowledge of one leaf
//! bucket: the gap version extending into the bucket from below
//! (`lead_gap`), plus every entry with its `gap_after`. Merging two views
//! is a pointwise maximum over the key space — at every point the higher
//! version wins, a present entry beats an absent gap at equal version
//! (equal versions denote identical data, and the insert rule gives an
//! entry a version strictly above the gap it split, so the tie can only
//! arise between two copies of the same fact).
//!
//! The merged gap over an interval between two merged boundaries is the
//! **span maximum**: the largest version among all gap segments of either
//! view overlapping that open interval. This is exact, not conservative:
//! any segment overlapping the interval asserts "no key in this overlap as
//! of version v", and in any state reachable by the paper's update rules
//! the deletion that created the highest such segment coalesced the whole
//! merged interval (its interior keys are either merged entries — which
//! bound the interval — or ghosts it dominates).

use repdir_core::{UserKey, Value, Version};

/// One stored entry of a bucket together with the gap version directly
/// above it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketEntry {
    pub key: UserKey,
    pub version: Version,
    pub value: Value,
    /// Version of the gap between this entry and the next boundary.
    pub gap_after: Version,
}

/// A representative's complete view of one leaf bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BucketView {
    /// Version of the gap extending into the bucket from below its first
    /// entry (for bucket 0 this is the directory's `low_gap`).
    pub lead_gap: Version,
    /// Entries in ascending key order.
    pub entries: Vec<BucketEntry>,
}

impl BucketView {
    /// Approximate serialized size, used for wire-cost accounting.
    pub fn wire_bytes(&self) -> u64 {
        let mut n = 8u64; // lead gap
        for e in &self.entries {
            n += e.key.len() as u64 + e.value.len() as u64 + 24;
        }
        n
    }
}

/// Where a gap raise is anchored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GapAnchor {
    /// The directory's leading gap (only emitted for bucket 0 — the lead
    /// gap of any later bucket is owned by an entry in an earlier bucket
    /// and is repaired when that bucket reconciles).
    LowEdge,
    /// The gap directly after this entry.
    After(UserKey),
}

/// What one representative must do to reach the merged bucket state.
/// All versions are pinned — apply installs them verbatim, it never mints
/// new ones, which is exactly why repair needs no quorum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairPlan {
    /// Entries to install (insert or overwrite) at the given version.
    pub installs: Vec<(UserKey, Version, Value)>,
    /// Local entries dominated by a merged gap: remove by coalescing the
    /// immediate neighbours at the covering gap version.
    pub ghosts: Vec<(UserKey, Version)>,
    /// Gap segments whose version must rise to the given target.
    pub gap_raises: Vec<(GapAnchor, Version)>,
}

impl RepairPlan {
    pub fn is_empty(&self) -> bool {
        self.installs.is_empty() && self.ghosts.is_empty() && self.gap_raises.is_empty()
    }
}

/// The gap version covering `key` in `view`, assuming `key` is not one of
/// the view's entries.
fn gap_at(view: &BucketView, key: &UserKey) -> Version {
    let idx = view.entries.partition_point(|e| e.key < *key);
    if idx == 0 {
        view.lead_gap
    } else {
        view.entries[idx - 1].gap_after
    }
}

/// Maximum gap version among `view`'s segments overlapping the open
/// interval `(lo, hi)`; `None` bounds mean the bucket edges.
fn span_max(view: &BucketView, lo: Option<&UserKey>, hi: Option<&UserKey>) -> Version {
    // Segment i runs between boundary i-1 and boundary i of the view
    // (boundaries are its entries; segment 0 starts at the bucket edge,
    // segment n ends at it). Open-interval overlap: seg.lo < hi && lo < seg.hi.
    let n = view.entries.len();
    let mut best = Version::ZERO;
    for i in 0..=n {
        let seg_lo = if i == 0 {
            None
        } else {
            Some(&view.entries[i - 1].key)
        };
        let seg_hi = view.entries.get(i).map(|e| &e.key);
        let below_hi = match (seg_lo, hi) {
            (_, None) | (None, _) => true,
            (Some(a), Some(b)) => a < b,
        };
        let above_lo = match (lo, seg_hi) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => a < b,
        };
        if below_hi && above_lo {
            let v = if i == 0 {
                view.lead_gap
            } else {
                view.entries[i - 1].gap_after
            };
            best = best.max(v);
        }
    }
    best
}

/// Pointwise merge of two views of the same bucket: at every key the
/// higher version wins (present beats absent at equal version); every
/// merged gap interval carries the span maximum of both sides.
pub fn merge_bucket(local: &BucketView, remote: &BucketView) -> BucketView {
    // Union of entry keys, ascending.
    let mut keys: Vec<&UserKey> = local
        .entries
        .iter()
        .chain(remote.entries.iter())
        .map(|e| &e.key)
        .collect();
    keys.sort();
    keys.dedup();

    let find = |view: &'_ BucketView, k: &UserKey| -> Option<usize> {
        view.entries.binary_search_by(|e| e.key.cmp(k)).ok()
    };

    // Decide presence per key: (version, is_entry), present ranked above
    // absent at equal version.
    let mut winners: Vec<(UserKey, Version, Value)> = Vec::new();
    for k in keys {
        let mut best: Option<(Version, &BucketEntry)> = None;
        let mut best_gap = Version::ZERO;
        for view in [local, remote] {
            match find(view, k) {
                Some(i) => {
                    let e = &view.entries[i];
                    if best.is_none_or(|(v, _)| e.version >= v) {
                        best = Some((e.version, e));
                    }
                }
                None => best_gap = best_gap.max(gap_at(view, k)),
            }
        }
        if let Some((v, e)) = best {
            // Present survives unless a gap strictly dominates it.
            if best_gap <= v {
                winners.push((e.key.clone(), v, e.value.clone()));
            }
        }
    }

    // Gap versions over the merged intervals.
    let lead_hi = winners.first().map(|(k, _, _)| k);
    let lead_gap = span_max(local, None, lead_hi).max(span_max(remote, None, lead_hi));
    let entries = winners
        .iter()
        .enumerate()
        .map(|(i, (k, v, val))| {
            let hi = winners.get(i + 1).map(|(nk, _, _)| nk);
            let gap_after = span_max(local, Some(k), hi).max(span_max(remote, Some(k), hi));
            BucketEntry {
                key: k.clone(),
                version: *v,
                value: val.clone(),
                gap_after,
            }
        })
        .collect();
    BucketView { lead_gap, entries }
}

/// What `local` must apply to reach `merged`. `bucket` selects whether a
/// lead-gap raise is expressible (`LowEdge` exists only for bucket 0).
pub fn plan_bucket(bucket: u8, local: &BucketView, merged: &BucketView) -> RepairPlan {
    let mut plan = RepairPlan::default();

    let find_local = |k: &UserKey| -> Option<&BucketEntry> {
        local
            .entries
            .binary_search_by(|e| e.key.cmp(k))
            .ok()
            .map(|i| &local.entries[i])
    };

    for me in &merged.entries {
        match find_local(&me.key) {
            Some(le) => {
                if le.version < me.version {
                    plan.installs
                        .push((me.key.clone(), me.version, me.value.clone()));
                }
                if me.gap_after > le.gap_after {
                    plan.gap_raises
                        .push((GapAnchor::After(me.key.clone()), me.gap_after));
                }
            }
            None => {
                // Present wins ties against gaps, hence >=.
                if me.version >= gap_at(local, &me.key) {
                    plan.installs
                        .push((me.key.clone(), me.version, me.value.clone()));
                }
                // A fresh install splits the local gap it lands in; raise
                // its upper half if the merged gap is ahead.
                if me.gap_after > gap_at(local, &me.key) {
                    plan.gap_raises
                        .push((GapAnchor::After(me.key.clone()), me.gap_after));
                }
            }
        }
    }

    for le in &local.entries {
        let in_merged = merged
            .entries
            .binary_search_by(|e| e.key.cmp(&le.key))
            .is_ok();
        if !in_merged {
            plan.ghosts.push((le.key.clone(), gap_at(merged, &le.key)));
        }
    }

    if bucket == 0 && merged.lead_gap > local.lead_gap {
        plan.gap_raises.push((GapAnchor::LowEdge, merged.lead_gap));
    }

    plan
}

/// Convenience: merge `local` with `remote` and plan the local repair.
pub fn diff_bucket(bucket: u8, local: &BucketView, remote: &BucketView) -> RepairPlan {
    plan_bucket(bucket, local, &merge_bucket(local, remote))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &[u8]) -> UserKey {
        UserKey::new(s)
    }

    fn val(s: &[u8]) -> Value {
        Value::new(s)
    }

    fn v(n: u64) -> Version {
        Version::new(n)
    }

    fn entry(key: &[u8], version: u64, gap_after: u64) -> BucketEntry {
        BucketEntry {
            key: k(key),
            version: v(version),
            value: val(&[key[0], version as u8]),
            gap_after: v(gap_after),
        }
    }

    fn view(lead: u64, entries: Vec<BucketEntry>) -> BucketView {
        BucketView {
            lead_gap: v(lead),
            entries,
        }
    }

    #[test]
    fn newer_remote_entry_is_installed_at_its_pinned_version() {
        let local = view(0, vec![entry(b"a", 2, 0)]);
        let remote = view(0, vec![entry(b"a", 7, 0)]);
        let plan = diff_bucket(10, &local, &remote);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.installs[0].0, k(b"a"));
        assert_eq!(plan.installs[0].1, v(7));
        assert!(plan.ghosts.is_empty());
        assert!(plan.gap_raises.is_empty());
        // The stale side learning nothing new plans nothing.
        assert!(diff_bucket(10, &remote, &local).is_empty());
    }

    #[test]
    fn equal_versions_are_identical_and_need_no_repair() {
        let a = view(3, vec![entry(b"a", 5, 3), entry(b"c", 8, 3)]);
        assert!(diff_bucket(0, &a, &a.clone()).is_empty());
        assert_eq!(merge_bucket(&a, &a), a);
    }

    #[test]
    fn dominating_gap_turns_local_entry_into_ghost() {
        // Remote deleted "b" with a coalesce at version 9; local still has
        // the entry at version 2.
        let local = view(0, vec![entry(b"b", 2, 0)]);
        let remote = view(9, vec![]);
        let merged = merge_bucket(&local, &remote);
        assert!(merged.entries.is_empty());
        assert_eq!(merged.lead_gap, v(9));
        let plan = plan_bucket(0, &local, &merged);
        assert_eq!(plan.ghosts, vec![(k(b"b"), v(9))]);
        assert!(plan.installs.is_empty());
        assert_eq!(plan.gap_raises, vec![(GapAnchor::LowEdge, v(9))]);
    }

    #[test]
    fn entry_beats_gap_on_equal_version_and_resurrects_after_higher_insert() {
        // Local saw the delete at 9; remote saw the later re-insert at 10.
        let local = view(9, vec![]);
        let remote = view(9, vec![entry(b"b", 10, 9)]);
        let plan = diff_bucket(0, &local, &remote);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.installs[0].1, v(10));
        // Equal version: present wins the tie (same fact, two encodings).
        let plan = diff_bucket(0, &view(10, vec![]), &view(9, vec![entry(b"b", 10, 9)]));
        assert_eq!(plan.installs.len(), 1);
        // Strictly higher gap: the delete is newer, entry stays dead.
        let plan = diff_bucket(0, &view(11, vec![]), &view(9, vec![entry(b"b", 10, 9)]));
        assert!(plan.installs.is_empty());
    }

    #[test]
    fn gap_after_raise_is_anchored_at_the_entry() {
        let local = view(1, vec![entry(b"a", 5, 2)]);
        let remote = view(1, vec![entry(b"a", 5, 8)]);
        let plan = diff_bucket(42, &local, &remote);
        assert!(plan.installs.is_empty());
        assert_eq!(plan.gap_raises, vec![(GapAnchor::After(k(b"a")), v(8))]);
        // Lead raises are only expressible for bucket 0.
        let plan = diff_bucket(42, &view(1, vec![]), &view(6, vec![]));
        assert!(plan.gap_raises.is_empty());
        let plan = diff_bucket(0, &view(1, vec![]), &view(6, vec![]));
        assert_eq!(plan.gap_raises, vec![(GapAnchor::LowEdge, v(6))]);
    }

    #[test]
    fn span_max_folds_ghost_subgaps_into_the_merged_interval() {
        // Local: entries a(v4, gap 8 above). Remote: one delete at 9
        // covering everything. The merged bucket is empty with lead 9 —
        // the ghost's sub-gaps (both strictly below 9) are absorbed.
        let local = view(3, vec![entry(b"a", 4, 8)]);
        let remote = view(9, vec![]);
        let merged = merge_bucket(&local, &remote);
        assert!(merged.entries.is_empty());
        assert_eq!(merged.lead_gap, v(9));
        // Symmetric case: the surviving neighbours bound the interval and
        // the ghost's two adjacent segments feed the span max.
        let local = view(
            1,
            vec![entry(b"a", 5, 2), entry(b"b", 3, 6), entry(b"d", 7, 1)],
        );
        let remote = view(1, vec![entry(b"a", 5, 7), entry(b"d", 7, 1)]);
        let merged = merge_bucket(&local, &remote);
        // "b" (v3) is dominated by remote's (a,d) gap at 7.
        assert_eq!(
            merged
                .entries
                .iter()
                .map(|e| e.key.clone())
                .collect::<Vec<_>>(),
            vec![k(b"a"), k(b"d")]
        );
        // Merged (a,d) gap = max(local a.gap_after=2, local b.gap_after=6,
        // remote a.gap_after=7) = 7.
        assert_eq!(merged.entries[0].gap_after, v(7));
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let a = view(2, vec![entry(b"a", 5, 2), entry(b"c", 3, 6)]);
        let b = view(4, vec![entry(b"c", 9, 1), entry(b"e", 2, 4)]);
        let ab = merge_bucket(&a, &b);
        let ba = merge_bucket(&b, &a);
        assert_eq!(ab, ba);
        assert_eq!(merge_bucket(&ab, &b), ab);
        assert_eq!(merge_bucket(&ab, &a), ab);
        // A view that already matches the merge plans nothing.
        assert!(plan_bucket(0, &ab, &ab).is_empty());
    }

    #[test]
    fn install_into_fresh_gap_raises_the_split_upper_half() {
        // Remote has entry b(v5) with gap 4 above; local never saw it and
        // holds a flat gap at 1. Installing b splits local's gap — the
        // upper half must then rise to 4.
        let local = view(1, vec![]);
        let remote = view(1, vec![entry(b"b", 5, 4)]);
        let plan = diff_bucket(7, &local, &remote);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.gap_raises, vec![(GapAnchor::After(k(b"b")), v(4))]);
    }
}
