//! Anti-entropy for replicated directories: summary-tree reconciliation.
//!
//! The paper's quorum intersection guarantees every *read* sees the latest
//! version, but a representative that missed writes (partition, drop,
//! restart) converges back only when a write quorum happens to land on it —
//! until then it keeps voting with stale versions. This crate closes that
//! gap with a background reconciliation protocol in the style of directory
//! reconciliation / Merkle-tree anti-entropy:
//!
//! * each representative maintains a [`SummaryCache`] — a fanout-16 summary
//!   tree of [`Digest`]s over 256 key-range buckets, hashing every stored
//!   entry's `(key, version, gap_after)` triple (and the leading gap), kept
//!   incrementally via dirty marks on apply;
//! * a [`Repairer`] periodically picks a peer, compares summary levels
//!   root-down, and pulls only the mismatched buckets ([`BucketView`]s);
//! * [`merge_bucket`] computes the pointwise-latest state of two bucket
//!   views and [`plan_bucket`] turns it into a [`RepairPlan`] of entry
//!   installs at **pinned** version numbers, ghost removals, and gap-version
//!   raises;
//! * a [`RepairDriver`] closes the loop automatically: it drains the
//!   suite's stale-vote queue into bucket-targeted pulls (two messages per
//!   divergent bucket, no walk), falls back to summary sweeps when the
//!   queue is dry, and adapts the sweep interval ([`Pacing`]) — geometric
//!   backoff while quiescent, snap-back to the floor on stale votes,
//!   applied repairs, or a member-recovery signal.
//!
//! Soundness rests on the paper's version-number update rule: at every
//! point of the key space the version only grows, a higher version always
//! wins, and equal versions denote identical data. Merging two replica
//! states pointwise by "higher version wins" therefore needs **no quorum**
//! — repair transfers facts the suite already committed, never invents
//! versions, and is idempotent.
//!
//! The crate is deliberately below the replica layer: it depends only on
//! core types and obs, and talks to concrete representatives through the
//! [`RepairPeer`] / [`RepairTarget`] traits (implemented in
//! `repdir-replica` for in-process and networked reps).

mod driver;
mod merge;
mod repairer;
mod summary;

pub use driver::{
    CatchupStats, CatchupStream, DriverHandle, DriverWaker, HealthSink, Pacer, Pacing,
    RepairDriver, TickStats, VoteSource,
};
pub use merge::{
    diff_bucket, merge_bucket, plan_bucket, BucketEntry, BucketView, GapAnchor, RepairPlan,
};
pub use repairer::{ApplyStats, RepairError, RepairPeer, RepairTarget, Repairer, RoundStats};
pub use summary::{
    bucket_high, bucket_low, bucket_of, entry_digest, fold_children, low_gap_digest, Digest,
    SummaryCache, BUCKETS, FANOUT, GROUPS,
};
