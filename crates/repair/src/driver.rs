//! The self-driving repair loop: stale-vote-fed targeted pulls with
//! adaptive pacing.
//!
//! A [`RepairDriver`] wraps a [`Repairer`] with the policy layer the
//! ROADMAP left open: *what* to repair and *when*. It drains a stale-vote
//! source (the evidence quorum reads collect for free), coalesces the
//! votes into distinct summary buckets, and issues bucket-targeted pulls —
//! no summary walk, two fabric messages per divergent bucket. Only when
//! the queue is dry does it fall back to periodic summary sweeps, and the
//! sweep interval adapts ([`Pacing`]): geometric backoff while sweeps
//! quiesce, snap-back to the floor on evidence of work (stale votes,
//! applied changes, a member-recovery signal, or a *fresh* peer error).
//!
//! The driver runs on a background thread behind a [`DriverHandle`] that
//! stops and joins on drop, and is woken early through [`DriverWaker`]s —
//! one wired to the stale-vote queue, one to the representative's recovery
//! hook.

use std::collections::BTreeSet;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use repdir_core::suite::StaleVote;
use repdir_core::Key;

use crate::repairer::{ApplyStats, RepairError, RepairTarget, Repairer, RoundStats};
use crate::summary::bucket_of;

/// Adaptive pacing bounds for a repair driver.
///
/// The driver's tick interval starts at `floor`, multiplies by `factor`
/// after every quiescent tick (a sweep that found nothing and failed
/// nothing), saturates at `cap`, and snaps back to `floor` whenever there
/// is evidence of work to do. A fixed-interval loop is the degenerate
/// [`Pacing::fixed`] configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pacing {
    /// Shortest tick interval; activity snaps the driver back here.
    pub floor: Duration,
    /// Longest tick interval; geometric backoff stops growing here.
    pub cap: Duration,
    /// Interval multiplier applied after each quiescent tick (≥ 1.0).
    pub factor: f64,
    /// Divergence threshold for snapshot-assisted catch-up: when a sweep's
    /// summary walk finds *more* than this many dirty buckets (out of 256)
    /// and a [`CatchupStream`] is attached, the driver streams a full
    /// snapshot from the sweep peer instead of pulling bucket by bucket,
    /// then mops up the remainder with targeted pulls. The default (64,
    /// a quarter of the tree) is where per-bucket set-difference sync
    /// starts losing to shipping state wholesale.
    pub snapshot_threshold: u32,
}

impl Default for Pacing {
    /// 25 ms floor, 3.2 s cap, doubling — an idle fleet settles to one
    /// summary exchange every few seconds, while a stale vote or recovery
    /// pulls the next tick to within 25 ms. Snapshot catch-up kicks in
    /// past 64 dirty buckets.
    fn default() -> Self {
        Pacing {
            floor: Duration::from_millis(25),
            cap: Duration::from_millis(3200),
            factor: 2.0,
            snapshot_threshold: 64,
        }
    }
}

impl Pacing {
    /// A non-adaptive configuration: every tick `interval` apart — the
    /// pre-driver `Repairer::spawn` behaviour.
    pub fn fixed(interval: Duration) -> Self {
        Pacing {
            floor: interval,
            cap: interval,
            factor: 1.0,
            ..Pacing::default()
        }
    }
}

/// The pacing state machine, kept separate from the thread loop so the
/// backoff schedule is unit-testable without any clock.
///
/// Transitions (from the current delay `d`):
///
/// * [`note_quiet`](Pacer::note_quiet) — quiescent sweep: `d ← min(d ×
///   factor, cap)`.
/// * [`note_activity`](Pacer::note_activity) — stale votes drained,
///   changes applied, or a recovery signal: `d ← floor`.
/// * [`note_errors`](Pacer::note_errors) — a tick that only failed: the
///   *first* error after a healthy tick snaps to the floor (a transient
///   worth retrying soon); consecutive error ticks back off like
///   quiescence, so a dead-majority fabric is probed ever more slowly
///   instead of being spun against at the floor.
#[derive(Clone, Debug)]
pub struct Pacer {
    pacing: Pacing,
    delay: Duration,
    consecutive_errors: u32,
}

impl Pacer {
    /// A pacer at the floor of `pacing`.
    pub fn new(pacing: Pacing) -> Self {
        Pacer {
            pacing,
            delay: pacing.floor,
            consecutive_errors: 0,
        }
    }

    /// The interval to sleep before the next tick.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    fn back_off(&mut self) {
        let grown = self.delay.as_secs_f64() * self.pacing.factor.max(1.0);
        self.delay = Duration::from_secs_f64(grown).min(self.pacing.cap);
    }

    /// A tick swept and found nothing to do: back off geometrically.
    pub fn note_quiet(&mut self) {
        self.consecutive_errors = 0;
        self.back_off();
    }

    /// Evidence of work (votes, applied changes, recovery): snap to floor.
    pub fn note_activity(&mut self) {
        self.consecutive_errors = 0;
        self.delay = self.pacing.floor;
    }

    /// A tick that only saw errors (no progress).
    pub fn note_errors(&mut self) {
        self.consecutive_errors += 1;
        if self.consecutive_errors == 1 {
            self.delay = self.pacing.floor;
        } else {
            self.back_off();
        }
    }
}

/// What one driver tick's vote-drain accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Stale votes drained from the source.
    pub votes: u64,
    /// Distinct buckets the votes coalesced into.
    pub buckets: u64,
    /// Targeted bucket-pull attempts issued (≥ `buckets` when peers
    /// failed and the driver rotated).
    pub pulls: u64,
    /// Pull attempts that failed with a transient error.
    pub errors: u64,
    /// Buckets every peer failed on; their evidence is dropped — the next
    /// read of a still-stale key re-queues it, and the fallback sweep
    /// covers divergence nothing reads.
    pub unrepaired: u64,
    /// What the applied plans changed.
    pub applied: ApplyStats,
}

/// Messages a driver thread sleeps on.
enum Msg {
    /// New stale votes are queued for this driver's member.
    Votes,
    /// This driver's representative recovered (healed or replayed its log).
    Recovery,
    /// Stop and join.
    Shutdown,
}

/// Wakes a [`RepairDriver`] ahead of its timer. Cloneable and cheap; safe
/// to call from any thread (sends are fire-and-forget once the driver is
/// gone).
#[derive(Clone)]
pub struct DriverWaker {
    tx: mpsc::Sender<Msg>,
}

impl DriverWaker {
    /// Signals that stale votes are available to drain.
    pub fn wake_votes(&self) {
        let _ = self.tx.send(Msg::Votes);
    }

    /// Signals that the driver's representative recovered: pacing snaps to
    /// the floor so the post-recovery sweep happens promptly.
    pub fn wake_recovery(&self) {
        let _ = self.tx.send(Msg::Recovery);
    }
}

/// RAII handle to a background repair driver; stops and joins on drop.
pub struct DriverHandle {
    tx: Option<mpsc::Sender<Msg>>,
    join: Option<JoinHandle<()>>,
}

impl DriverHandle {
    /// A waker for this driver (stale-vote queue and recovery hooks).
    pub fn waker(&self) -> DriverWaker {
        DriverWaker {
            tx: self.tx.clone().expect("driver running"),
        }
    }

    /// Stops the driver and waits for the in-flight tick to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for DriverHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Source of stale votes for one driver — typically a closure draining a
/// `StaleVoteQueue` for the driver's member.
pub type VoteSource = Box<dyn FnMut() -> Vec<StaleVote> + Send>;

/// Sink for the driver's repair-health transitions — typically a closure
/// flipping this member's `RepairHealth` flag so `LatencyPolicy` demotes it
/// while buckets stay unhealed. Called with `true` when a tick leaves
/// buckets unrepaired, `false` once a later tick heals cleanly.
pub type HealthSink = Box<dyn Fn(bool) + Send>;

/// Full-state catch-up for a far-diverged representative, plugged into a
/// [`RepairDriver`] via [`with_catchup`](RepairDriver::with_catchup).
///
/// When a sweep's summary walk finds more dirty buckets than
/// [`Pacing::snapshot_threshold`], the driver calls
/// [`stream`](CatchupStream::stream) instead of issuing per-bucket pulls:
/// the implementation (the `repdir-snapshot` installer) pulls a chunked
/// snapshot from the named peer and applies it through the target's
/// guarded plan path. Implementations keep their own resume cursor, so a
/// failed stream continues where it stopped on the next call rather than
/// restarting.
pub trait CatchupStream: Send {
    /// Streams a snapshot from repair peer `peer_idx` into `target`.
    /// Transient errors abandon the attempt (progress is kept for resume)
    /// and the driver falls back to its normal pacing.
    fn stream(
        &mut self,
        peer_idx: usize,
        target: &Arc<dyn RepairTarget>,
    ) -> Result<CatchupStats, RepairError>;
}

/// Cost and effect of one completed snapshot catch-up stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatchupStats {
    /// Chunk frames fetched (manifest excluded).
    pub chunks: u64,
    /// Entries received across all chunks.
    pub entries: u64,
    /// Approximate payload bytes received.
    pub bytes: u64,
    /// Whether this stream resumed a previously interrupted install
    /// (the chunk cursor was honored rather than starting over).
    pub resumed: bool,
    /// What the guarded applies actually changed.
    pub applied: ApplyStats,
    /// Whether the local summary root matched the manifest root after
    /// install. `false` is not an error — concurrent writes during the
    /// install legitimately move the root past the frozen snapshot.
    pub root_matched: bool,
}

/// The summary bucket a stale vote names. Sentinel keys map to the edge
/// buckets (`Low` lives in bucket 0 with the leading gap; `High`'s
/// trailing gap hangs off the last bucket).
fn vote_bucket(key: &Key) -> u8 {
    match key {
        Key::Low => 0,
        Key::User(k) => bucket_of(k.as_bytes()),
        Key::High => u8::MAX,
    }
}

/// Drives anti-entropy for one representative: stale-vote-targeted pulls
/// first, adaptively paced summary sweeps as the fallback.
pub struct RepairDriver {
    repairer: Repairer,
    votes: Option<VoteSource>,
    catchup: Option<Box<dyn CatchupStream>>,
    health_sink: Option<HealthSink>,
    pacing: Pacing,
    next_peer: usize,
}

impl RepairDriver {
    /// A driver over `repairer` with no vote source: every tick is a
    /// summary sweep round, paced by `pacing`.
    pub fn new(repairer: Repairer, pacing: Pacing) -> Self {
        RepairDriver {
            repairer,
            votes: None,
            catchup: None,
            health_sink: None,
            pacing,
            next_peer: 0,
        }
    }

    /// Attaches the stale-vote source this driver drains on every tick.
    pub fn with_vote_source(mut self, votes: VoteSource) -> Self {
        self.votes = Some(votes);
        self
    }

    /// Attaches a snapshot catch-up stream, enabling the
    /// [`Pacing::snapshot_threshold`] switch in fallback sweeps.
    pub fn with_catchup(mut self, catchup: Box<dyn CatchupStream>) -> Self {
        self.catchup = Some(catchup);
        self
    }

    /// Attaches the repair-health sink this driver reports unhealed-bucket
    /// transitions to (quorum demotion; see `RepairHealth`).
    pub fn with_health_sink(mut self, sink: HealthSink) -> Self {
        self.health_sink = Some(sink);
        self
    }

    /// The wrapped repairer.
    pub fn repairer(&self) -> &Repairer {
        &self.repairer
    }

    /// Synchronously drains the vote source and issues one targeted bucket
    /// pull per distinct divergent bucket, rotating to the next peer when
    /// one fails mid-pull. This is the exact work a background tick does
    /// when votes are pending; it is public so tests and benches can drive
    /// it deterministically.
    pub fn drain_and_pull(&mut self) -> TickStats {
        let mut tick = TickStats::default();
        let Some(source) = self.votes.as_mut() else {
            return tick;
        };
        let votes = source();
        if votes.is_empty() {
            return tick;
        }
        tick.votes = votes.len() as u64;
        // Coalesce per bucket: ten stale keys under one leading byte cost
        // one pull, which ships the whole bucket anyway.
        let buckets: BTreeSet<u8> = votes.iter().map(|v| vote_bucket(&v.key)).collect();
        tick.buckets = buckets.len() as u64;
        let reg = repdir_obs::global();
        let targeted = reg.counter("repair.driver.targeted_pulls");
        let peer_errors = reg.counter("repair.peer_errors");
        let peer_count = self.repairer.peer_count();
        for bucket in buckets {
            let mut repaired = false;
            for attempt in 0..peer_count {
                let peer = (self.next_peer + attempt) % peer_count;
                targeted.inc();
                tick.pulls += 1;
                match self.repairer.pull_bucket_from(peer, bucket) {
                    Ok(applied) => {
                        tick.applied.absorb(applied);
                        // Stick with a working peer; rotate off a dead one.
                        self.next_peer = peer;
                        repaired = true;
                        break;
                    }
                    Err(_) => {
                        tick.errors += 1;
                        peer_errors.inc();
                    }
                }
            }
            if !repaired {
                tick.unrepaired += 1;
            }
        }
        tick
    }

    /// One fallback summary-sweep round against the next peer round-robin.
    ///
    /// The sweep walks the summary tree first and counts dirty buckets.
    /// Past [`Pacing::snapshot_threshold`] (and given a [`CatchupStream`]),
    /// it streams a full snapshot from the sweep peer, re-walks, and mops
    /// up the remainder with targeted pulls; otherwise it pulls the dirty
    /// buckets one by one — the same message cost as the classic
    /// `run_round`.
    fn sweep_once(&mut self) -> (RoundStats, bool) {
        let peer_count = self.repairer.peer_count();
        if peer_count == 0 {
            return (RoundStats::default(), false);
        }
        let peer = self.next_peer % peer_count;
        self.next_peer = (self.next_peer + 1) % peer_count;
        let reg = repdir_obs::global();
        let mut dirty = match self.repairer.divergent_buckets(peer) {
            Ok(d) => d,
            Err(_) => {
                reg.counter("repair.peer_errors").inc();
                return (RoundStats::default(), true);
            }
        };
        // One summary walk happened above, whichever path follows.
        let mut stats = RoundStats {
            summaries: 1,
            ..RoundStats::default()
        };
        let mut errored = false;
        if dirty.len() as u32 > self.pacing.snapshot_threshold {
            if let Some(catchup) = self.catchup.as_mut() {
                let _span = reg.span("repair.snapshot.install");
                match catchup.stream(peer, self.repairer.target()) {
                    Ok(cs) => {
                        reg.counter("repair.snapshot.installs").inc();
                        reg.counter("repair.snapshot.chunks").add(cs.chunks);
                        reg.counter("repair.snapshot.bytes").add(cs.bytes);
                        if cs.resumed {
                            reg.counter("repair.snapshot.resumes").inc();
                        }
                        stats.keys_pulled += cs.entries;
                        stats.bytes += cs.bytes;
                        stats.applied.absorb(cs.applied);
                        // Re-walk: the snapshot was frozen when the stream
                        // began, so buckets written meanwhile (or ahead of
                        // this peer) still need their targeted pulls.
                        dirty = match self.repairer.divergent_buckets(peer) {
                            Ok(d) => d,
                            Err(_) => {
                                reg.counter("repair.peer_errors").inc();
                                return (stats, true);
                            }
                        };
                    }
                    Err(_) => {
                        // The installer kept its cursor; the next sweep
                        // resumes the stream instead of hammering a dead
                        // peer with hundreds of per-bucket pulls now.
                        reg.counter("repair.snapshot.aborts").inc();
                        reg.counter("repair.peer_errors").inc();
                        return (stats, true);
                    }
                }
            }
        }
        for bucket in dirty {
            match self.repairer.pull_bucket_from(peer, bucket) {
                Ok(applied) => {
                    stats.mismatched_buckets += 1;
                    stats.applied.absorb(applied);
                }
                Err(_) => {
                    reg.counter("repair.peer_errors").inc();
                    stats.errors += 1;
                    errored = true;
                }
            }
        }
        (stats, errored)
    }

    /// Runs the driver on a background thread. The returned handle stops
    /// and joins the thread on drop; [`DriverHandle::waker`] produces the
    /// wake endpoints for the stale-vote queue and the recovery hook.
    pub fn spawn(mut self) -> DriverHandle {
        let (tx, rx) = mpsc::channel::<Msg>();
        let join = std::thread::Builder::new()
            .name("repdir-repair-driver".into())
            .spawn(move || {
                let reg = repdir_obs::global();
                let wakes = reg.counter("repair.driver.wakes");
                let sweeps = reg.counter("repair.driver.sweeps");
                let backoff_ms = reg.counter("repair.driver.backoff_ms");
                let mut pacer = Pacer::new(self.pacing);
                backoff_ms.set(pacer.delay().as_millis() as u64);
                // Tracks the last state reported to the health sink so
                // transitions fire once, not every tick.
                let mut unhealthy = false;
                loop {
                    let first = rx.recv_timeout(pacer.delay());
                    let mut timed_out = false;
                    let mut recovered = false;
                    match first {
                        Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                        Ok(Msg::Recovery) => recovered = true,
                        Ok(Msg::Votes) => {}
                        Err(RecvTimeoutError::Timeout) => timed_out = true,
                    }
                    // Collapse the wake burst: one tick drains everything
                    // queued so far, so pending wake messages for it are
                    // absorbed rather than re-ticked.
                    loop {
                        match rx.try_recv() {
                            Ok(Msg::Shutdown) | Err(mpsc::TryRecvError::Disconnected) => return,
                            Ok(Msg::Recovery) => recovered = true,
                            Ok(Msg::Votes) => {}
                            Err(mpsc::TryRecvError::Empty) => break,
                        }
                    }
                    wakes.inc();
                    let tick = self.drain_and_pull();
                    let mut swept = false;
                    let mut swept_errors = false;
                    let mut swept_applied = 0;
                    // Dry queue on a timer tick → fall back to a summary
                    // sweep round. Vote wakes stay targeted-only, and the
                    // recovery wake just snaps pacing: the recovered member
                    // gets its sweep on the next (floor-delayed) tick.
                    if timed_out && tick.votes == 0 {
                        sweeps.inc();
                        let (stats, errored) = self.sweep_once();
                        swept = true;
                        swept_errors = errored;
                        swept_applied = stats.applied.total();
                    }
                    // Report unhealed-bucket transitions: flag this member
                    // the moment a tick leaves buckets it could not heal
                    // (`unrepaired > 0`); clear once a later tick repairs
                    // everything its votes asked for or an error-free
                    // summary sweep confirms the member caught up.
                    if let Some(sink) = &self.health_sink {
                        if tick.unrepaired > 0 {
                            if !unhealthy {
                                unhealthy = true;
                                sink(true);
                            }
                        } else if unhealthy
                            && ((tick.votes > 0 && tick.errors == 0) || (swept && !swept_errors))
                        {
                            unhealthy = false;
                            sink(false);
                        }
                    }
                    if recovered || tick.votes > 0 || tick.applied.total() > 0 || swept_applied > 0
                    {
                        pacer.note_activity();
                    } else if tick.errors > 0 || swept_errors {
                        pacer.note_errors();
                    } else if timed_out {
                        pacer.note_quiet();
                    }
                    backoff_ms.set(pacer.delay().as_millis() as u64);
                }
            })
            .expect("spawn repair driver thread");
        DriverHandle {
            tx: Some(tx),
            join: Some(join),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pacing(floor_ms: u64, cap_ms: u64, factor: f64) -> Pacing {
        Pacing {
            floor: Duration::from_millis(floor_ms),
            cap: Duration::from_millis(cap_ms),
            factor,
            ..Pacing::default()
        }
    }

    #[test]
    fn pacer_backs_off_geometrically_to_the_cap() {
        let mut p = Pacer::new(pacing(10, 80, 2.0));
        assert_eq!(p.delay(), Duration::from_millis(10));
        p.note_quiet();
        assert_eq!(p.delay(), Duration::from_millis(20));
        p.note_quiet();
        assert_eq!(p.delay(), Duration::from_millis(40));
        p.note_quiet();
        assert_eq!(p.delay(), Duration::from_millis(80));
        p.note_quiet();
        assert_eq!(p.delay(), Duration::from_millis(80), "saturates at cap");
    }

    #[test]
    fn pacer_snaps_back_to_floor_on_activity() {
        let mut p = Pacer::new(pacing(10, 80, 2.0));
        for _ in 0..4 {
            p.note_quiet();
        }
        assert_eq!(p.delay(), Duration::from_millis(80));
        p.note_activity(); // stale votes, applied changes, or recovery
        assert_eq!(p.delay(), Duration::from_millis(10));
        p.note_quiet();
        assert_eq!(p.delay(), Duration::from_millis(20), "backoff restarts");
    }

    #[test]
    fn pacer_first_error_snaps_then_consecutive_errors_back_off() {
        let mut p = Pacer::new(pacing(10, 80, 2.0));
        for _ in 0..4 {
            p.note_quiet();
        }
        assert_eq!(p.delay(), Duration::from_millis(80));
        // A fresh error is a transient: retry soon.
        p.note_errors();
        assert_eq!(p.delay(), Duration::from_millis(10));
        // But a fabric that keeps failing must not be spun against.
        p.note_errors();
        assert_eq!(p.delay(), Duration::from_millis(20));
        p.note_errors();
        assert_eq!(p.delay(), Duration::from_millis(40));
        p.note_errors();
        assert_eq!(p.delay(), Duration::from_millis(80));
        p.note_errors();
        assert_eq!(p.delay(), Duration::from_millis(80), "error backoff caps");
        // Any success resets the error streak: the next error snaps again.
        p.note_quiet();
        p.note_errors();
        assert_eq!(p.delay(), Duration::from_millis(10));
    }

    #[test]
    fn pacer_fixed_configuration_never_moves() {
        let mut p = Pacer::new(Pacing::fixed(Duration::from_millis(7)));
        for _ in 0..3 {
            p.note_quiet();
            p.note_errors();
            p.note_activity();
        }
        assert_eq!(p.delay(), Duration::from_millis(7));
    }

    #[test]
    fn pacer_schedule_under_a_fake_clock() {
        // Replay a full scenario on a virtual clock: the wake times are a
        // pure function of the transition sequence, so CI timing never
        // enters. Floor 10 ms, cap 80 ms, doubling.
        let mut p = Pacer::new(pacing(10, 80, 2.0));
        let mut clock_ms = 0u64;
        let mut wake_times = Vec::new();
        // Six quiescent ticks, then a stale vote lands, then two more
        // quiescent ticks.
        for step in 0..9 {
            clock_ms += p.delay().as_millis() as u64;
            wake_times.push(clock_ms);
            if step == 6 {
                p.note_activity();
            } else {
                p.note_quiet();
            }
        }
        assert_eq!(
            wake_times,
            vec![
                10,  // floor
                30,  // +20
                70,  // +40
                150, // +80 (cap)
                230, // +80
                310, // +80
                390, // +80 — this tick drains the vote, snaps to floor
                400, // +10
                420, // +20
            ]
        );
    }

    #[test]
    fn vote_buckets_cover_sentinel_keys() {
        use repdir_core::UserKey;
        assert_eq!(vote_bucket(&Key::Low), 0);
        assert_eq!(vote_bucket(&Key::High), 255);
        assert_eq!(vote_bucket(&Key::User(UserKey::new(vec![0x41, 1]))), 0x41);
        assert_eq!(vote_bucket(&Key::User(UserKey::new(Vec::new()))), 0);
    }
}
