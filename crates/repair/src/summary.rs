//! Summary tree: per-bucket digests over `(key, version, gap_after)`.
//!
//! The key space is split into 256 leaf buckets by the first key byte
//! (bucket 0 additionally owns the empty key and the directory's leading
//! gap). With fanout 16 that yields a three-level tree: one root, 16
//! level-1 groups, 256 leaves. A summary exchange ships one level of 16
//! digests, so a fully synchronised pair of representatives settles a
//! repair round after a single 16-digest comparison.
//!
//! Digests deliberately hash versions but not values: the paper's update
//! rule guarantees equal versions carry identical data, so `(key, version)`
//! pairs — plus the gap versions that encode deletions — fully determine
//! the state. `count` rides along as a cheap cross-check and lets callers
//! report how many entries a mismatched subtree covers.

use std::sync::Mutex;

use repdir_core::Version;

/// Number of leaf buckets (one per possible first key byte).
pub const BUCKETS: usize = 256;

/// Children per internal node.
pub const FANOUT: usize = 16;

/// Number of level-1 groups (`BUCKETS / FANOUT`).
pub const GROUPS: usize = BUCKETS / FANOUT;

/// A summary of one subtree: an order-sensitive hash plus the number of
/// entries it covers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Digest {
    /// Hash over every `(key, version, gap_after)` in the subtree (and the
    /// leading gap version for subtrees containing bucket 0).
    pub hash: u64,
    /// Number of directory entries in the subtree.
    pub count: u64,
}

/// splitmix64 finalizer — avalanches a 64-bit word.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash contribution of a single stored entry. Contributions are combined
/// by XOR inside a bucket, so bucket hashes are order-independent and can
/// be maintained incrementally (insert = XOR in, remove = XOR out).
pub fn entry_digest(key: &[u8], version: Version, gap_after: Version) -> u64 {
    let mut h = fnv1a(key);
    h = mix64(h ^ version.get().wrapping_mul(0xA24B_AED4_963E_E407));
    mix64(h ^ gap_after.get().wrapping_mul(0x9FB2_1C65_1E98_DF25))
}

/// Hash contribution of the directory's leading gap (the segment starting
/// at `LOW`). Folded into bucket 0 only.
pub fn low_gap_digest(v: Version) -> u64 {
    mix64(v.get() ^ 0x01BA_D5EE_D0DD_BA11)
}

/// Leaf bucket owning `key` (its first byte; the empty key lands in 0).
pub fn bucket_of(key: &[u8]) -> u8 {
    key.first().copied().unwrap_or(0)
}

/// Inclusive lower key bound of bucket `b`, or `None` for "from LOW"
/// (bucket 0 must also cover the empty key, which no one-byte bound can).
pub fn bucket_low(b: u8) -> Option<[u8; 1]> {
    (b > 0).then_some([b])
}

/// Exclusive upper key bound of bucket `b`, or `None` for "to HIGH".
pub fn bucket_high(b: u8) -> Option<[u8; 1]> {
    b.checked_add(1).map(|n| [n])
}

/// Order-sensitive fold of child digests into a parent digest.
pub fn fold_children(children: &[Digest]) -> Digest {
    let mut hash: u64 = 0x0005_EED0_F5EA_5A11;
    let mut count: u64 = 0;
    for c in children {
        hash = mix64(hash ^ c.hash ^ c.count.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        count += c.count;
    }
    Digest { hash, count }
}

struct CacheInner {
    digests: [Digest; BUCKETS],
    dirty: [bool; BUCKETS],
}

/// Incrementally maintained leaf digests for one representative.
///
/// The representative marks buckets dirty as it applies operations
/// (`mark` on insert, `mark_span` on coalesce, `mark_all` on abort or
/// recovery) and hands a recompute closure to [`children`] when a repair
/// peer asks for a summary level; only dirty buckets are rescanned.
///
/// [`children`]: SummaryCache::children
pub struct SummaryCache {
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for SummaryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("summary lock");
        let dirty = inner.dirty.iter().filter(|&&d| d).count();
        f.debug_struct("SummaryCache")
            .field("dirty_buckets", &dirty)
            .finish()
    }
}

impl Default for SummaryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryCache {
    /// A cache with every bucket dirty (first read scans the whole state).
    pub fn new() -> Self {
        SummaryCache {
            inner: Mutex::new(CacheInner {
                digests: [Digest::default(); BUCKETS],
                dirty: [true; BUCKETS],
            }),
        }
    }

    /// Marks the bucket owning `key` dirty.
    pub fn mark(&self, key: &[u8]) {
        let mut inner = self.inner.lock().expect("summary lock");
        inner.dirty[bucket_of(key) as usize] = true;
    }

    /// Marks every bucket in the inclusive span dirty. Callers map a
    /// coalesce range `(low, high)` to `bucket_of(low)..=bucket_of(high)`
    /// with sentinels at 0 / 255.
    pub fn mark_span(&self, lo: u8, hi: u8) {
        let mut inner = self.inner.lock().expect("summary lock");
        for b in lo..=hi {
            inner.dirty[b as usize] = true;
        }
    }

    /// Marks everything dirty (abort undo, recovery, checkpoint reload).
    pub fn mark_all(&self) {
        let mut inner = self.inner.lock().expect("summary lock");
        inner.dirty = [true; BUCKETS];
    }

    /// The digests of one tree level's children under `path`, refreshing
    /// dirty leaves through `recompute`.
    ///
    /// * `level` 0: the root's children — [`GROUPS`] folded group digests
    ///   (`path` ignored, conventionally 0).
    /// * `level` 1: the [`FANOUT`] leaf digests of group `path`.
    ///
    /// Unknown levels or out-of-range paths return an empty vector, which
    /// peers treat as a protocol mismatch.
    pub fn children(
        &self,
        level: u8,
        path: u8,
        recompute: &mut dyn FnMut(u8) -> Digest,
    ) -> Vec<Digest> {
        let mut inner = self.inner.lock().expect("summary lock");
        let refresh = |inner: &mut CacheInner,
                       range: std::ops::Range<usize>,
                       recompute: &mut dyn FnMut(u8) -> Digest| {
            for b in range {
                if inner.dirty[b] {
                    inner.digests[b] = recompute(b as u8);
                    inner.dirty[b] = false;
                }
            }
        };
        match level {
            0 => {
                refresh(&mut inner, 0..BUCKETS, recompute);
                (0..GROUPS)
                    .map(|g| fold_children(&inner.digests[g * FANOUT..(g + 1) * FANOUT]))
                    .collect()
            }
            1 if (path as usize) < GROUPS => {
                let g = path as usize;
                refresh(&mut inner, g * FANOUT..(g + 1) * FANOUT, recompute);
                inner.digests[g * FANOUT..(g + 1) * FANOUT].to_vec()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Version {
        Version::new(n)
    }

    #[test]
    fn bucket_bounds_partition_the_key_space() {
        assert_eq!(bucket_low(0), None);
        assert_eq!(bucket_low(7), Some([7]));
        assert_eq!(bucket_high(254), Some([255]));
        assert_eq!(bucket_high(255), None);
        // Every one-byte prefix lands in its own bucket; the empty key in 0.
        assert_eq!(bucket_of(b""), 0);
        assert_eq!(bucket_of(b"\x00zzz"), 0);
        assert_eq!(bucket_of(b"\xffa"), 255);
        for b in 0..=255u8 {
            assert_eq!(bucket_of(&[b, 1, 2]), b);
        }
    }

    #[test]
    fn entry_digest_is_sensitive_to_each_field() {
        let base = entry_digest(b"key", v(3), v(1));
        assert_ne!(base, entry_digest(b"kez", v(3), v(1)));
        assert_ne!(base, entry_digest(b"key", v(4), v(1)));
        assert_ne!(base, entry_digest(b"key", v(3), v(2)));
        assert_eq!(base, entry_digest(b"key", v(3), v(1)));
    }

    #[test]
    fn fold_is_order_sensitive_and_sums_counts() {
        let a = Digest { hash: 1, count: 2 };
        let b = Digest { hash: 9, count: 5 };
        let ab = fold_children(&[a, b]);
        let ba = fold_children(&[b, a]);
        assert_ne!(ab.hash, ba.hash);
        assert_eq!(ab.count, 7);
        assert_eq!(ba.count, 7);
    }

    #[test]
    fn cache_recomputes_only_dirty_buckets() {
        let cache = SummaryCache::new();
        let mut calls = vec![0u32; BUCKETS];
        // First level-0 read scans everything.
        let l0 = cache.children(0, 0, &mut |b| {
            calls[b as usize] += 1;
            Digest {
                hash: b as u64,
                count: 1,
            }
        });
        assert_eq!(l0.len(), GROUPS);
        assert!(calls.iter().all(|&c| c == 1));
        // A clean re-read recomputes nothing.
        let l0_again = cache.children(0, 0, &mut |b| {
            calls[b as usize] += 1;
            Digest {
                hash: b as u64,
                count: 1,
            }
        });
        assert_eq!(l0, l0_again);
        assert!(calls.iter().all(|&c| c == 1));
        // Dirtying one key refreshes exactly its bucket, and only the
        // owning group's digest moves.
        cache.mark(b"\x23x");
        let l0_after = cache.children(0, 0, &mut |b| {
            calls[b as usize] += 1;
            Digest {
                hash: 999,
                count: 1,
            }
        });
        assert_eq!(calls[0x23], 2);
        assert_eq!(
            calls.iter().map(|&c| c as u64).sum::<u64>(),
            BUCKETS as u64 + 1
        );
        for g in 0..GROUPS {
            if g == 0x2 {
                assert_ne!(l0[g], l0_after[g]);
            } else {
                assert_eq!(l0[g], l0_after[g]);
            }
        }
    }

    #[test]
    fn level_one_returns_leaf_digests_for_the_group() {
        let cache = SummaryCache::new();
        let leaves = cache.children(1, 3, &mut |b| Digest {
            hash: b as u64,
            count: b as u64,
        });
        assert_eq!(leaves.len(), FANOUT);
        for (i, d) in leaves.iter().enumerate() {
            assert_eq!(d.hash, (3 * FANOUT + i) as u64);
        }
        // Root folds the same leaves.
        let l0 = cache.children(0, 0, &mut |b| Digest {
            hash: b as u64,
            count: b as u64,
        });
        assert_eq!(l0[3], fold_children(&leaves));
        // Out-of-range requests are empty, not panics.
        assert!(cache.children(1, 16, &mut |_| Digest::default()).is_empty());
        assert!(cache.children(2, 0, &mut |_| Digest::default()).is_empty());
    }

    #[test]
    fn mark_span_dirties_the_inclusive_range() {
        let cache = SummaryCache::new();
        // Settle the cache.
        cache.children(0, 0, &mut |_| Digest::default());
        let mut touched = Vec::new();
        cache.mark_span(10, 12);
        cache.children(0, 0, &mut |b| {
            touched.push(b);
            Digest::default()
        });
        assert_eq!(touched, vec![10, 11, 12]);
    }
}
