//! The repair driver: root-down summary walks, bucket pulls, plan apply.
//!
//! A [`Repairer`] owns one local [`RepairTarget`] and a set of
//! [`RepairPeer`]s. One *round* against one peer compares the summary tree
//! root-down — one 16-digest exchange per level, descending only into
//! mismatched subtrees — then pulls each mismatched bucket, merges it with
//! the local view ([`diff_bucket`]) and applies the resulting plan. An
//! in-sync pair settles a round after a single summary exchange; a pair
//! differing in `k` buckets costs `1 + groups(k)` summary exchanges plus
//! `k` pulls, instead of shipping the whole directory.
//!
//! Repair is pull-based and one-directional: a round makes the *local*
//! representative at least as new as the peer, never the converse. Full
//! fleet convergence comes from every representative running its own
//! repairer (see `run_until_quiescent` and the suite-level convergence
//! test).

use std::fmt;
use std::sync::Arc;

use crate::driver::{DriverHandle, Pacing, RepairDriver};
use crate::merge::{diff_bucket, BucketView, RepairPlan};
use crate::summary::{Digest, FANOUT};

/// Why a repair step could not run. All variants are transient from the
/// repairer's perspective: the round is abandoned and retried later.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The representative (local or peer) is marked unavailable.
    Unavailable,
    /// Lock contention or a transaction conflict; retry next round.
    Contended,
    /// Transport failure or a malformed reply.
    Protocol(String),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Unavailable => write!(f, "representative unavailable"),
            RepairError::Contended => write!(f, "lock contention during repair"),
            RepairError::Protocol(msg) => write!(f, "repair protocol error: {msg}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// A remote representative as seen by the repairer: read-only summary and
/// bucket endpoints. Implementations live in `repdir-replica` (in-process
/// and RPC-backed).
pub trait RepairPeer: Send + Sync {
    /// Digests of one summary-tree level (see `SummaryCache::children`).
    fn summary(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError>;
    /// The peer's full view of one bucket.
    fn pull(&self, bucket: u8) -> Result<BucketView, RepairError>;
}

/// The local representative being repaired.
pub trait RepairTarget: Send + Sync {
    /// Digests of one summary-tree level of the local state.
    fn children(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError>;
    /// The local view of one bucket.
    fn bucket(&self, bucket: u8) -> Result<BucketView, RepairError>;
    /// Applies a plan at its pinned versions. Implementations must guard
    /// each step against concurrent progress (only ever move versions up)
    /// and report what actually changed.
    fn apply(&self, plan: &RepairPlan) -> Result<ApplyStats, RepairError>;
    /// Lands a durable checkpoint of the current state, if the target
    /// supports one. A snapshot install calls this once on completion so
    /// recovery replays from the freshly caught-up state (and retired
    /// stale-vote spills drop out of the log); failures are non-fatal —
    /// the default does nothing.
    fn checkpoint(&self) -> Result<(), RepairError> {
        Ok(())
    }
}

/// What an apply pass actually changed (guarded steps that were already
/// superseded by concurrent progress are not counted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    pub installed: u64,
    pub ghosts_removed: u64,
    pub gaps_raised: u64,
}

impl ApplyStats {
    pub fn total(&self) -> u64 {
        self.installed + self.ghosts_removed + self.gaps_raised
    }

    pub fn absorb(&mut self, other: ApplyStats) {
        self.installed += other.installed;
        self.ghosts_removed += other.ghosts_removed;
        self.gaps_raised += other.gaps_raised;
    }
}

/// Cost and effect of one or more repair rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Summary levels fetched (root + descended groups).
    pub summaries: u64,
    /// Buckets whose digests mismatched and were pulled.
    pub mismatched_buckets: u64,
    /// Entries received across all pulls.
    pub keys_pulled: u64,
    /// Approximate payload bytes exchanged.
    pub bytes: u64,
    /// Rounds that failed with a transient error.
    pub errors: u64,
    /// What the applies changed.
    pub applied: ApplyStats,
}

impl RoundStats {
    pub fn absorb(&mut self, other: RoundStats) {
        self.summaries += other.summaries;
        self.mismatched_buckets += other.mismatched_buckets;
        self.keys_pulled += other.keys_pulled;
        self.bytes += other.bytes;
        self.errors += other.errors;
        self.applied.absorb(other.applied);
    }
}

/// Outcome of [`Repairer::run_until_quiescent`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QuiesceStats {
    /// Sweeps executed (one round per peer each).
    pub sweeps: u64,
    /// Whether the last sweep was error-free and changed nothing.
    pub quiescent: bool,
    /// Accumulated cost/effect over every sweep.
    pub total: RoundStats,
}

const SUMMARY_WIRE_BYTES: u64 = 2 + FANOUT as u64 * 16;

/// Drives anti-entropy for one representative against a set of peers.
pub struct Repairer {
    target: Arc<dyn RepairTarget>,
    peers: Vec<Box<dyn RepairPeer>>,
}

impl Repairer {
    pub fn new(target: Arc<dyn RepairTarget>, peers: Vec<Box<dyn RepairPeer>>) -> Self {
        Repairer { target, peers }
    }

    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The local representative being repaired — handed to a
    /// [`CatchupStream`](crate::CatchupStream) when the driver switches to
    /// snapshot mode.
    pub fn target(&self) -> &Arc<dyn RepairTarget> {
        &self.target
    }

    /// Walks the summary tree against peer `peer_idx` and returns every
    /// bucket whose digest disagrees, without pulling any of them — the
    /// driver uses the count to pick between per-bucket pulls and a
    /// snapshot stream.
    pub fn divergent_buckets(&self, peer_idx: usize) -> Result<Vec<u8>, RepairError> {
        let peer = self
            .peers
            .get(peer_idx)
            .ok_or_else(|| RepairError::Protocol(format!("no peer {peer_idx}")))?;
        let mut stats = RoundStats::default();
        let groups = self.compare_level(peer.as_ref(), 0, 0, &mut stats)?;
        let mut buckets = Vec::new();
        for g in groups {
            for leaf in self.compare_level(peer.as_ref(), 1, g, &mut stats)? {
                buckets.push(g * FANOUT as u8 + leaf);
            }
        }
        Ok(buckets)
    }

    /// One full round against peer `peer_idx`: walk the summary tree
    /// root-down, pull every mismatched bucket, merge and apply.
    pub fn run_round(&self, peer_idx: usize) -> Result<RoundStats, RepairError> {
        let peer = self
            .peers
            .get(peer_idx)
            .ok_or_else(|| RepairError::Protocol(format!("no peer {peer_idx}")))?;
        let reg = repdir_obs::global();
        let _span = reg.span("repair.round");
        reg.counter("repair.rounds").inc();

        let mut stats = RoundStats::default();
        let groups = self.compare_level(peer.as_ref(), 0, 0, &mut stats)?;
        let mut buckets = Vec::new();
        for g in groups {
            for leaf in self.compare_level(peer.as_ref(), 1, g, &mut stats)? {
                buckets.push(g * FANOUT as u8 + leaf);
            }
        }
        for b in buckets {
            let applied = self.pull_and_apply(peer.as_ref(), b, &mut stats)?;
            stats.applied.absorb(applied);
        }
        Ok(stats)
    }

    /// Fetches one summary level from the peer and the target, returning
    /// the child indices whose digests disagree.
    fn compare_level(
        &self,
        peer: &dyn RepairPeer,
        level: u8,
        path: u8,
        stats: &mut RoundStats,
    ) -> Result<Vec<u8>, RepairError> {
        let remote = peer.summary(level, path)?;
        let local = self.target.children(level, path)?;
        stats.summaries += 1;
        stats.bytes += SUMMARY_WIRE_BYTES;
        repdir_obs::global().counter("repair.subtrees_walked").inc();
        if remote.len() != local.len() || remote.len() != FANOUT {
            return Err(RepairError::Protocol(format!(
                "summary level {level}/{path}: got {} digests, expected {FANOUT}",
                remote.len()
            )));
        }
        Ok((0..FANOUT as u8)
            .filter(|&i| remote[i as usize] != local[i as usize])
            .collect())
    }

    fn pull_and_apply(
        &self,
        peer: &dyn RepairPeer,
        bucket: u8,
        stats: &mut RoundStats,
    ) -> Result<ApplyStats, RepairError> {
        let remote = peer.pull(bucket)?;
        stats.mismatched_buckets += 1;
        stats.keys_pulled += remote.entries.len() as u64;
        stats.bytes += remote.wire_bytes();
        let reg = repdir_obs::global();
        reg.counter("repair.keys_pulled")
            .add(remote.entries.len() as u64);
        reg.counter("repair.bytes").add(remote.wire_bytes());
        let local = self.target.bucket(bucket)?;
        let plan = diff_bucket(bucket, &local, &remote);
        if plan.is_empty() {
            return Ok(ApplyStats::default());
        }
        self.target.apply(&plan)
    }

    /// Targeted repair of a single bucket from a single peer — the inline
    /// read-repair path (a stale vote names the key, hence the bucket; no
    /// summary walk is needed).
    pub fn pull_bucket_from(&self, peer_idx: usize, bucket: u8) -> Result<ApplyStats, RepairError> {
        let peer = self
            .peers
            .get(peer_idx)
            .ok_or_else(|| RepairError::Protocol(format!("no peer {peer_idx}")))?;
        let mut stats = RoundStats::default();
        self.pull_and_apply(peer.as_ref(), bucket, &mut stats)
    }

    /// One round against every peer. Transient per-peer errors are counted,
    /// not propagated — a down peer must not stall repair from the others.
    pub fn run_sweep(&self) -> RoundStats {
        let mut total = RoundStats::default();
        for idx in 0..self.peers.len() {
            match self.run_round(idx) {
                Ok(s) => total.absorb(s),
                Err(_) => total.errors += 1,
            }
        }
        total
    }

    /// Sweeps until a sweep is error-free and changes nothing locally
    /// (deterministic pulls: an unchanged state stays unchanged), or the
    /// cap is hit.
    pub fn run_until_quiescent(&self, max_sweeps: u64) -> QuiesceStats {
        let mut out = QuiesceStats::default();
        while out.sweeps < max_sweeps {
            let sweep = self.run_sweep();
            out.sweeps += 1;
            out.total.absorb(sweep);
            if sweep.errors == 0 && sweep.applied.total() == 0 {
                out.quiescent = true;
                break;
            }
        }
        out
    }

    /// Runs the repairer on a background thread: one summary-sweep round
    /// against the next peer (round-robin) per tick, paced by `pacing`.
    /// Errors are absorbed into the `repair.peer_errors` counter and
    /// retried on a later tick. This is the vote-less configuration of
    /// [`RepairDriver`]; attach a stale-vote source via
    /// [`RepairDriver::with_vote_source`] to get targeted pulls too.
    pub fn spawn(self, pacing: Pacing) -> DriverHandle {
        RepairDriver::new(self, pacing).spawn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{BucketEntry, GapAnchor};
    use crate::summary::{bucket_of, entry_digest, low_gap_digest, SummaryCache, BUCKETS};
    use repdir_core::{UserKey, Value, Version};
    use std::sync::Mutex;
    use std::time::Duration;

    /// A toy representative storing bucket views directly — exercises the
    /// walk/pull/apply loop without the full storage stack (the real
    /// adapters live in repdir-replica).
    struct MemRep {
        cache: SummaryCache,
        buckets: Mutex<Vec<BucketView>>,
    }

    impl MemRep {
        fn new() -> Arc<Self> {
            Arc::new(MemRep {
                cache: SummaryCache::new(),
                buckets: Mutex::new(vec![BucketView::default(); BUCKETS]),
            })
        }

        fn insert(&self, key: &[u8], version: u64, gap_after: u64) {
            let mut buckets = self.buckets.lock().unwrap();
            let view = &mut buckets[bucket_of(key) as usize];
            let k = UserKey::new(key);
            let idx = view.entries.partition_point(|e| e.key < k);
            let entry = BucketEntry {
                key: k,
                version: Version::new(version),
                value: Value::new([key[0], version as u8]),
                gap_after: Version::new(gap_after),
            };
            if view.entries.get(idx).is_some_and(|e| e.key == entry.key) {
                view.entries[idx] = entry;
            } else {
                view.entries.insert(idx, entry);
            }
            self.cache.mark(key);
        }

        fn digest_bucket(&self, b: u8) -> Digest {
            let buckets = self.buckets.lock().unwrap();
            let view = &buckets[b as usize];
            let mut hash = 0u64;
            for e in &view.entries {
                hash ^= entry_digest(e.key.as_bytes(), e.version, e.gap_after);
            }
            if b == 0 {
                hash ^= low_gap_digest(view.lead_gap);
            }
            Digest {
                hash,
                count: view.entries.len() as u64,
            }
        }
    }

    impl RepairTarget for MemRep {
        fn children(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError> {
            Ok(self
                .cache
                .children(level, path, &mut |b| self.digest_bucket(b)))
        }

        fn bucket(&self, bucket: u8) -> Result<BucketView, RepairError> {
            Ok(self.buckets.lock().unwrap()[bucket as usize].clone())
        }

        fn apply(&self, plan: &RepairPlan) -> Result<ApplyStats, RepairError> {
            let mut stats = ApplyStats::default();
            for (k, v, val) in &plan.installs {
                let mut buckets = self.buckets.lock().unwrap();
                let view = &mut buckets[bucket_of(k.as_bytes()) as usize];
                let idx = view.entries.partition_point(|e| e.key < *k);
                let at = view.entries.get(idx).filter(|e| e.key == *k);
                let gap = if idx == 0 {
                    view.lead_gap
                } else {
                    view.entries[idx - 1].gap_after
                };
                match at {
                    Some(e) if e.version >= *v => continue,
                    Some(_) => {
                        view.entries[idx].version = *v;
                        view.entries[idx].value = val.clone();
                    }
                    None => view.entries.insert(
                        idx,
                        BucketEntry {
                            key: k.clone(),
                            version: *v,
                            value: val.clone(),
                            gap_after: gap,
                        },
                    ),
                }
                self.cache.mark(k.as_bytes());
                stats.installed += 1;
            }
            for (k, covering) in &plan.ghosts {
                let mut buckets = self.buckets.lock().unwrap();
                let view = &mut buckets[bucket_of(k.as_bytes()) as usize];
                if let Ok(idx) = view.entries.binary_search_by(|e| e.key.cmp(k)) {
                    if view.entries[idx].version < *covering {
                        view.entries.remove(idx);
                        if idx == 0 {
                            view.lead_gap = *covering;
                        } else {
                            view.entries[idx - 1].gap_after = *covering;
                        }
                        self.cache.mark(k.as_bytes());
                        stats.ghosts_removed += 1;
                    }
                }
            }
            for (anchor, to) in &plan.gap_raises {
                let mut buckets = self.buckets.lock().unwrap();
                match anchor {
                    GapAnchor::LowEdge => {
                        if buckets[0].lead_gap < *to {
                            buckets[0].lead_gap = *to;
                            self.cache.mark(b"");
                            stats.gaps_raised += 1;
                        }
                    }
                    GapAnchor::After(k) => {
                        let view = &mut buckets[bucket_of(k.as_bytes()) as usize];
                        if let Ok(idx) = view.entries.binary_search_by(|e| e.key.cmp(k)) {
                            if view.entries[idx].gap_after < *to {
                                view.entries[idx].gap_after = *to;
                                self.cache.mark(k.as_bytes());
                                stats.gaps_raised += 1;
                            }
                        }
                    }
                }
            }
            Ok(stats)
        }
    }

    impl RepairPeer for Arc<MemRep> {
        fn summary(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError> {
            self.as_ref().children(level, path)
        }

        fn pull(&self, bucket: u8) -> Result<BucketView, RepairError> {
            self.as_ref().bucket(bucket)
        }
    }

    fn digests_equal(a: &MemRep, b: &MemRep) -> bool {
        a.children(0, 0).unwrap() == b.children(0, 0).unwrap()
    }

    #[test]
    fn in_sync_pair_settles_after_one_summary_exchange() {
        let a = MemRep::new();
        let b = MemRep::new();
        for rep in [&a, &b] {
            rep.insert(b"alpha", 3, 0);
            rep.insert(b"beta", 5, 0);
        }
        let repairer = Repairer::new(a.clone(), vec![Box::new(b.clone())]);
        let stats = repairer.run_round(0).unwrap();
        assert_eq!(stats.summaries, 1);
        assert_eq!(stats.mismatched_buckets, 0);
        assert_eq!(stats.keys_pulled, 0);
        assert_eq!(stats.applied.total(), 0);
    }

    #[test]
    fn walk_descends_only_into_mismatched_subtrees() {
        let a = MemRep::new();
        let b = MemRep::new();
        for rep in [&a, &b] {
            rep.insert(b"alpha", 3, 0);
        }
        // One extra key on the peer, in one bucket.
        b.insert(b"zeta", 7, 0);
        let repairer = Repairer::new(a.clone(), vec![Box::new(b.clone())]);
        let stats = repairer.run_round(0).unwrap();
        // Root level + exactly one descended group, one pulled bucket.
        assert_eq!(stats.summaries, 2);
        assert_eq!(stats.mismatched_buckets, 1);
        assert_eq!(stats.keys_pulled, 1);
        assert_eq!(stats.applied.installed, 1);
        assert!(digests_equal(&a, &b));
        // Next round: fully settled again.
        let stats = repairer.run_round(0).unwrap();
        assert_eq!(stats.summaries, 1);
        assert_eq!(stats.applied.total(), 0);
    }

    #[test]
    fn quiescence_converges_divergent_reps_both_ways() {
        let a = MemRep::new();
        let b = MemRep::new();
        for i in 0..40u64 {
            let key = [(i % 7 * 31 + 11) as u8, i as u8];
            a.insert(&key, i + 1, 0);
            if i % 3 != 0 {
                b.insert(&key, i + 1, 0);
            }
        }
        b.insert(b"only-on-b", 99, 0);
        let ra = Repairer::new(a.clone(), vec![Box::new(b.clone())]);
        let rb = Repairer::new(b.clone(), vec![Box::new(a.clone())]);
        // Pull-based repair is one-directional; drive both until neither
        // changes anything.
        for _ in 0..8 {
            let qa = ra.run_until_quiescent(8);
            let qb = rb.run_until_quiescent(8);
            assert!(qa.quiescent && qb.quiescent);
            if digests_equal(&a, &b) {
                break;
            }
        }
        assert!(digests_equal(&a, &b));
        assert_eq!(*a.buckets.lock().unwrap(), *b.buckets.lock().unwrap());
    }

    #[test]
    fn targeted_pull_repairs_only_the_named_bucket() {
        let a = MemRep::new();
        let b = MemRep::new();
        b.insert(b"alpha", 3, 0);
        b.insert(b"zeta", 7, 0);
        let repairer = Repairer::new(a.clone(), vec![Box::new(b.clone())]);
        let applied = repairer.pull_bucket_from(0, bucket_of(b"zeta")).unwrap();
        assert_eq!(applied.installed, 1);
        // "alpha" is still missing — only the named bucket was touched.
        assert!(a.buckets.lock().unwrap()[bucket_of(b"alpha") as usize]
            .entries
            .is_empty());
        assert_eq!(
            a.buckets.lock().unwrap()[bucket_of(b"zeta") as usize]
                .entries
                .len(),
            1
        );
    }

    #[test]
    fn background_thread_converges_and_stops_cleanly() {
        let a = MemRep::new();
        let b = MemRep::new();
        for i in 0..10u64 {
            b.insert(&[i as u8 + 40, 1], i + 1, 0);
        }
        let repairer = Repairer::new(a.clone(), vec![Box::new(b.clone())]);
        let handle = repairer.spawn(Pacing::fixed(Duration::from_millis(1)));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !digests_equal(&a, &b) {
            assert!(
                std::time::Instant::now() < deadline,
                "background repair stalled"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        assert_eq!(*a.buckets.lock().unwrap(), *b.buckets.lock().unwrap());
    }

    #[test]
    fn sweep_counts_peer_errors_without_stalling_other_peers() {
        struct DownPeer;
        impl RepairPeer for DownPeer {
            fn summary(&self, _: u8, _: u8) -> Result<Vec<Digest>, RepairError> {
                Err(RepairError::Unavailable)
            }
            fn pull(&self, _: u8) -> Result<BucketView, RepairError> {
                Err(RepairError::Unavailable)
            }
        }
        let a = MemRep::new();
        let b = MemRep::new();
        b.insert(b"key", 2, 0);
        let repairer = Repairer::new(a.clone(), vec![Box::new(DownPeer), Box::new(b.clone())]);
        let sweep = repairer.run_sweep();
        assert_eq!(sweep.errors, 1);
        assert_eq!(sweep.applied.installed, 1);
        assert!(digests_equal(&a, &b));
    }
}
