//! Request/response RPC over the message fabric.
//!
//! This is the `Send(<procedure invocation>) to (<object instance>)`
//! primitive of the paper's §3, with the error responses the paper elides
//! (timeouts, unreachable peers) made explicit.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fabric::{Endpoint, MsgKind, Network, NodeId};

/// RPC failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline (message lost, peer down or
    /// partitioned away).
    Timeout,
    /// The destination node has never registered on the network.
    Unreachable(NodeId),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => f.write_str("rpc timed out"),
            RpcError::Unreachable(n) => write!(f, "destination {n} unreachable"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A client that issues blocking calls from its own node.
///
/// Stale responses (from calls that already timed out) are recognized by
/// correlation id and discarded, so a late reply can never be mistaken for
/// the answer to a newer call.
pub struct RpcClient {
    net: Arc<Network>,
    endpoint: Endpoint,
    next_id: AtomicU64,
}

impl RpcClient {
    /// Creates a client registered as `node`.
    pub fn new(net: Arc<Network>, node: NodeId) -> Self {
        let endpoint = net.register(node);
        RpcClient {
            net,
            endpoint,
            next_id: AtomicU64::new(1),
        }
    }

    /// This client's node id.
    pub fn node(&self) -> NodeId {
        self.endpoint.node()
    }

    /// Sends `payload` to `dst` and blocks for the matching response.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no matching response arrives in time;
    /// [`RpcError::Unreachable`] if `dst` never registered.
    pub fn call(
        &self,
        dst: NodeId,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, RpcError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if !self
            .net
            .send(self.endpoint.node(), dst, MsgKind::Request(id), payload)
        {
            return Err(RpcError::Unreachable(dst));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RpcError::Timeout);
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => match env.kind {
                    MsgKind::Response(rid) if rid == id => return Ok(env.payload),
                    // Stale response from an abandoned call, or an
                    // unexpected request: discard.
                    _ => continue,
                },
                Err(_) => return Err(RpcError::Timeout),
            }
        }
    }
}

impl fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcClient")
            .field("node", &self.endpoint.node())
            .finish()
    }
}

/// Control handle for a running [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl ServerHandle {
    /// Asks the serving thread to exit after its current poll interval.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Spawns a thread serving requests arriving at `node`: each request's
/// payload is passed to `handler` and the returned bytes are sent back as
/// the response. Non-request messages are ignored.
pub fn serve<F>(net: Arc<Network>, node: NodeId, handler: F) -> ServerHandle
where
    F: Fn(&[u8]) -> Vec<u8> + Send + 'static,
{
    let endpoint = net.register(node);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::Builder::new()
        .name(format!("repdir-rpc-{node}"))
        .spawn(move || loop {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            match endpoint.recv_timeout(Duration::from_millis(25)) {
                Ok(env) => {
                    if let MsgKind::Request(id) = env.kind {
                        let reply = handler(&env.payload);
                        net.send(node, env.src, MsgKind::Response(id), reply);
                    }
                }
                Err(_) => continue,
            }
        })
        .expect("spawn rpc server thread");
    ServerHandle { stop }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{FaultPlan, LatencyModel};

    const TICK: Duration = Duration::from_secs(2);

    #[test]
    fn echo_round_trip() {
        let net = Arc::new(Network::new(1));
        let _server = serve(Arc::clone(&net), NodeId(1), |req| {
            let mut out = req.to_vec();
            out.reverse();
            out
        });
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let reply = client.call(NodeId(1), vec![1, 2, 3], TICK).unwrap();
        assert_eq!(reply, vec![3, 2, 1]);
        assert_eq!(client.node(), NodeId(0));
    }

    #[test]
    fn concurrent_clients_share_a_server() {
        let net = Arc::new(Network::new(2));
        let _server = serve(Arc::clone(&net), NodeId(9), |req| req.to_vec());
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let client = RpcClient::new(net, NodeId(i));
                for round in 0..20u8 {
                    let payload = vec![i as u8, round];
                    let reply = client.call(NodeId(9), payload.clone(), TICK).unwrap();
                    assert_eq!(reply, payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn timeout_when_server_partitioned() {
        let net = Arc::new(Network::new(3));
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        net.partition(&[&[NodeId(0)], &[NodeId(1)]]);
        let err = client
            .call(NodeId(1), vec![1], Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // Heal: calls work again, and the stale (nonexistent) response
        // cannot confuse the new call.
        net.heal();
        assert!(client.call(NodeId(1), vec![2], TICK).is_ok());
    }

    #[test]
    fn unreachable_destination() {
        let net = Arc::new(Network::new(4));
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let err = client.call(NodeId(42), vec![], TICK).unwrap_err();
        assert_eq!(err, RpcError::Unreachable(NodeId(42)));
    }

    #[test]
    fn stale_response_discarded_after_timeout() {
        // Server responds slower than the first call's deadline; the second
        // call must not consume the first call's late reply.
        let net = Arc::new(Network::new(5));
        net.set_fault_plan(FaultPlan {
            latency: LatencyModel::fixed(Duration::from_millis(40)),
            ..FaultPlan::default()
        });
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let err = client
            .call(NodeId(1), vec![111], Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        let reply = client.call(NodeId(1), vec![222], TICK).unwrap();
        assert_eq!(reply, vec![222], "late reply 111 must not leak into call 2");
    }

    #[test]
    fn server_stops_on_request() {
        let net = Arc::new(Network::new(6));
        let server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        client.call(NodeId(1), vec![1], TICK).unwrap();
        server.stop();
        std::thread::sleep(Duration::from_millis(60));
        // Once the serving thread exits its mailbox closes: depending on
        // timing the call fails unreachable (closed mailbox seen at send)
        // or times out (request sat in the dying mailbox).
        let err = client
            .call(NodeId(1), vec![2], Duration::from_millis(80))
            .unwrap_err();
        assert!(
            matches!(err, RpcError::Timeout | RpcError::Unreachable(_)),
            "{err:?}"
        );
    }

    #[test]
    fn survives_duplicated_requests() {
        // Duplicated requests produce duplicated responses; the client uses
        // the first and discards the second on the next call.
        let net = Arc::new(Network::new(7));
        net.set_fault_plan(FaultPlan {
            duplicate_prob: 1.0,
            ..FaultPlan::default()
        });
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        for i in 0..10u8 {
            let reply = client.call(NodeId(1), vec![i], TICK).unwrap();
            assert_eq!(reply, vec![i]);
        }
    }
}
