//! Request/response RPC over the message fabric.
//!
//! This is the `Send(<procedure invocation>) to (<object instance>)`
//! primitive of the paper's §3, with the error responses the paper elides
//! (timeouts, unreachable peers) made explicit.
//!
//! The client is safe for **concurrent in-flight calls**: a router thread
//! owns the node's mailbox and demultiplexes responses to per-call channels
//! by correlation id, so any number of threads can [`call`](RpcClient::call)
//! through one client at once, and a single thread can put N requests in
//! flight with [`call_async`](RpcClient::call_async) or
//! [`scatter`](RpcClient::scatter) and gather replies as they arrive. This
//! turns a quorum round from sum-of-member-latencies into
//! max-of-member-latencies — the cost model the paper's §3–§4 accounting
//! assumes.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use repdir_core::sync::Mutex;
use repdir_obs::{Counter, Histogram};

use crate::fabric::{Endpoint, MsgKind, Network, NodeId};

/// RPC failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline (message lost, peer down or
    /// partitioned away).
    Timeout,
    /// The destination node has never registered on the network.
    Unreachable(NodeId),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => f.write_str("rpc timed out"),
            RpcError::Unreachable(n) => write!(f, "destination {n} unreachable"),
        }
    }
}

impl std::error::Error for RpcError {}

/// How often the router thread wakes to check for shutdown.
const ROUTER_POLL: Duration = Duration::from_millis(25);

/// A registered in-flight call: the channel its response routes to, plus
/// the caller's tag (the request index within a [`scatter`](RpcClient::scatter),
/// `0` for solo calls).
#[derive(Debug)]
struct PendingSlot {
    tag: usize,
    tx: Sender<(usize, Vec<u8>)>,
}

/// Client-side RPC counters mirrored into the process-wide obs registry
/// (`rpc.*`), shared by every call/scatter handle of one client.
#[derive(Debug)]
struct RpcObs {
    calls: Counter,
    replies: Counter,
    timeouts: Counter,
    unreachable: Counter,
    reply_us: Histogram,
    /// Hedge RPCs launched by [`RpcClient::call_hedged`] after the primary
    /// exceeded its hedge delay.
    hedge_issued: Counter,
    /// Hedged calls whose winning reply came from a hedge, not the primary.
    hedge_won: Counter,
    /// Hedge RPCs whose reply was not the one used (the primary recovered,
    /// or the whole call timed out) — the message cost hedging trades for
    /// tail latency.
    hedge_wasted: Counter,
}

impl RpcObs {
    fn new() -> Self {
        let g = repdir_obs::global();
        RpcObs {
            calls: g.counter("rpc.calls"),
            replies: g.counter("rpc.replies"),
            timeouts: g.counter("rpc.timeouts"),
            unreachable: g.counter("rpc.unreachable"),
            reply_us: g.histogram("rpc.reply_us"),
            hedge_issued: g.counter("rpc.hedge.issued"),
            hedge_won: g.counter("rpc.hedge.won"),
            hedge_wasted: g.counter("rpc.hedge.wasted"),
        }
    }

    /// Send-time stamp for reply-latency samples, taken only while the
    /// global registry has timing armed (counters stay live either way).
    fn start(&self) -> Option<Instant> {
        repdir_obs::global().timing_armed().then(Instant::now)
    }
}

/// State shared between the client handle, its router thread, and
/// outstanding [`PendingReply`]/[`Scatter`] handles.
#[derive(Debug)]
struct ClientShared {
    pending: Mutex<HashMap<u64, PendingSlot>>,
    shutdown: AtomicBool,
    obs: RpcObs,
}

impl ClientShared {
    fn unregister(&self, id: u64) {
        self.pending.lock().remove(&id);
    }
}

/// A client that issues calls from its own node.
///
/// Responses are matched to calls by correlation id in a dedicated router
/// thread, so concurrent calls from many threads — or many async calls from
/// one thread — never steal or discard each other's replies. Stale responses
/// (from calls that already timed out and unregistered) are dropped at the
/// router, so a late reply can never be mistaken for the answer to a newer
/// call.
pub struct RpcClient {
    net: Arc<Network>,
    node: NodeId,
    next_id: AtomicU64,
    shared: Arc<ClientShared>,
}

impl RpcClient {
    /// Creates a client registered as `node` and spawns its response
    /// router.
    pub fn new(net: Arc<Network>, node: NodeId) -> Self {
        let endpoint = net.register(node);
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            obs: RpcObs::new(),
        });
        let router = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("repdir-rpc-router-{node}"))
            .spawn(move || route_responses(endpoint, router))
            .expect("spawn rpc router thread");
        RpcClient {
            net,
            node,
            next_id: AtomicU64::new(1),
            shared,
        }
    }

    /// This client's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `payload` to `dst` and blocks for the matching response.
    ///
    /// Safe to call from many threads at once: each call's response routes
    /// to it alone.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no matching response arrives in time;
    /// [`RpcError::Unreachable`] if `dst` never registered.
    pub fn call(
        &self,
        dst: NodeId,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, RpcError> {
        self.call_async(dst, payload)?.wait(timeout)
    }

    /// Sends `payload` to `dst` without waiting; the returned handle
    /// collects the response later. Any number of calls may be in flight
    /// at once.
    ///
    /// # Errors
    ///
    /// [`RpcError::Unreachable`] if `dst` never registered (detected at
    /// send time; timeouts surface from [`PendingReply::wait`]).
    pub fn call_async(&self, dst: NodeId, payload: Vec<u8>) -> Result<PendingReply, RpcError> {
        let (tx, rx) = unbounded();
        let id = self.register(0, tx);
        self.shared.obs.calls.inc();
        let started = self.shared.obs.start();
        if !self.net.send(self.node, dst, MsgKind::Request(id), payload) {
            self.shared.unregister(id);
            self.shared.obs.unreachable.inc();
            return Err(RpcError::Unreachable(dst));
        }
        Ok(PendingReply {
            id,
            rx,
            shared: Arc::clone(&self.shared),
            started,
        })
    }

    /// Puts every request in flight at once and returns a gather handle
    /// that yields replies in **completion order** — the scatter half of
    /// scatter-gather. Requests to unregistered destinations fail
    /// immediately and are yielded (as [`RpcError::Unreachable`]) before
    /// any network reply.
    pub fn scatter(&self, requests: Vec<(NodeId, Vec<u8>)>) -> Scatter {
        let (tx, rx) = unbounded();
        let mut by_id = HashMap::with_capacity(requests.len());
        let mut immediate = Vec::new();
        let started = self.shared.obs.start();
        for (index, (dst, payload)) in requests.into_iter().enumerate() {
            let id = self.register(index, tx.clone());
            self.shared.obs.calls.inc();
            if self.net.send(self.node, dst, MsgKind::Request(id), payload) {
                by_id.insert(id, index);
            } else {
                self.shared.unregister(id);
                self.shared.obs.unreachable.inc();
                immediate.push((index, Err(RpcError::Unreachable(dst))));
            }
        }
        // Reverse so pop() yields lowest index first.
        immediate.reverse();
        Scatter {
            shared: Arc::clone(&self.shared),
            by_id,
            rx,
            immediate,
            started,
        }
    }

    /// Sends `payload` to `dsts[0]` and, whenever the reply is slower than
    /// `hedge_after`, duplicates the request to the next destination in the
    /// list — the classic tail-latency hedge. The first reply to arrive
    /// wins; stragglers stay registered until the call settles and their
    /// late replies are then drained (dropped) by the correlation-id
    /// router, so a hedge can never be mistaken for the answer to a later
    /// call.
    ///
    /// Destinations should be ranked best-first (e.g. by reply-time EWMA);
    /// `hedge_after` is typically derived from a high percentile of the
    /// `rpc.reply_us` histogram. Progress is observable as
    /// `rpc.hedge.{issued,won,wasted}`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no destination answered within `timeout`;
    /// [`RpcError::Unreachable`] if every destination was unregistered.
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty.
    pub fn call_hedged(
        &self,
        dsts: &[NodeId],
        payload: Vec<u8>,
        hedge_after: Duration,
        timeout: Duration,
    ) -> Result<Vec<u8>, RpcError> {
        assert!(
            !dsts.is_empty(),
            "call_hedged needs at least one destination"
        );
        let started = self.shared.obs.start();
        let deadline = Instant::now() + timeout;
        let (tx, rx) = unbounded();
        let mut in_flight: Vec<u64> = Vec::new();
        let mut is_hedge = vec![false; dsts.len()];
        let mut hedges = 0u64;
        let mut next = 0usize;

        // Launch the primary, walking past unreachable destinations for
        // free: an unregistered node is known dead at send time, so moving
        // on is a substitution, not a hedge.
        while next < dsts.len() && in_flight.is_empty() {
            if let Some(id) = self.hedge_issue(dsts[next], &payload, next, &tx) {
                in_flight.push(id);
            }
            next += 1;
        }
        if in_flight.is_empty() {
            return Err(RpcError::Unreachable(dsts[dsts.len() - 1]));
        }

        let mut won_hedge = false;
        let outcome = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.shared.obs.timeouts.inc();
                break Err(RpcError::Timeout);
            }
            // Wait one hedge delay while spares remain, else to the
            // deadline.
            let wait = if next < dsts.len() {
                hedge_after.min(remaining)
            } else {
                remaining
            };
            match rx.recv_timeout(wait) {
                Ok((tag, body)) => {
                    self.shared.obs.replies.inc();
                    if let Some(at) = started {
                        self.shared.obs.reply_us.record(at.elapsed());
                    }
                    if is_hedge[tag] {
                        won_hedge = true;
                        self.shared.obs.hedge_won.inc();
                    }
                    break Ok(body);
                }
                // tx is held locally, so only a timeout can surface here.
                Err(_) => {
                    while next < dsts.len() {
                        let tag = next;
                        next += 1;
                        if let Some(id) = self.hedge_issue(dsts[tag], &payload, tag, &tx) {
                            self.shared.obs.hedge_issued.inc();
                            hedges += 1;
                            is_hedge[tag] = true;
                            in_flight.push(id);
                            break;
                        }
                    }
                }
            }
        };
        self.shared
            .obs
            .hedge_wasted
            .add(hedges - u64::from(won_hedge));
        // Unregister the stragglers; their late replies hit the router's
        // unknown-id path and are discarded.
        for id in in_flight {
            self.shared.unregister(id);
        }
        outcome
    }

    /// One send within a hedged call: registers a slot, counts the call,
    /// and reports an unregistered destination as `None` (slot released).
    fn hedge_issue(
        &self,
        dst: NodeId,
        payload: &[u8],
        tag: usize,
        tx: &Sender<(usize, Vec<u8>)>,
    ) -> Option<u64> {
        let id = self.register(tag, tx.clone());
        self.shared.obs.calls.inc();
        if self
            .net
            .send(self.node, dst, MsgKind::Request(id), payload.to_vec())
        {
            Some(id)
        } else {
            self.shared.unregister(id);
            self.shared.obs.unreachable.inc();
            None
        }
    }

    fn register(&self, tag: usize, tx: Sender<(usize, Vec<u8>)>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .pending
            .lock()
            .insert(id, PendingSlot { tag, tx });
        id
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcClient")
            .field("node", &self.node)
            .field("in_flight", &self.shared.pending.lock().len())
            .finish()
    }
}

fn route_responses(endpoint: Endpoint, shared: Arc<ClientShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match endpoint.recv_timeout(ROUTER_POLL) {
            Ok(env) => {
                if let MsgKind::Response(rid) = env.kind {
                    if let Some(slot) = shared.pending.lock().remove(&rid) {
                        // The waiter may have just timed out and dropped its
                        // receiver; that loss is indistinguishable from a
                        // late reply and equally fine.
                        let _ = slot.tx.send((slot.tag, env.payload));
                    }
                    // Unknown id: stale response from an abandoned call.
                }
                // Requests addressed to a pure client are dropped.
            }
            Err(RecvTimeoutError::Timeout) => continue,
            // Mailbox replaced (node re-registered): this router is orphaned.
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One in-flight call created by [`RpcClient::call_async`].
///
/// Dropping the handle abandons the call; its eventual response is
/// discarded at the router by correlation id.
#[derive(Debug)]
pub struct PendingReply {
    id: u64,
    rx: Receiver<(usize, Vec<u8>)>,
    shared: Arc<ClientShared>,
    /// Send-time stamp; `None` when the global registry has timing off.
    started: Option<Instant>,
}

impl PendingReply {
    /// Blocks until the response arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no response arrived in time (the call is
    /// unregistered; a later reply will be discarded).
    pub fn wait(&self, timeout: Duration) -> Result<Vec<u8>, RpcError> {
        match self.rx.recv_timeout(timeout) {
            Ok((_, payload)) => Ok(self.settled(payload)),
            Err(_) => {
                self.shared.unregister(self.id);
                // A response routed between the timeout and the
                // unregister above still counts as delivered.
                match self.rx.try_recv() {
                    Ok((_, payload)) => Ok(self.settled(payload)),
                    Err(_) => {
                        self.shared.obs.timeouts.inc();
                        Err(RpcError::Timeout)
                    }
                }
            }
        }
    }

    fn settled(&self, payload: Vec<u8>) -> Vec<u8> {
        self.shared.obs.replies.inc();
        if let Some(started) = self.started {
            self.shared.obs.reply_us.record(started.elapsed());
        }
        payload
    }
}

impl Drop for PendingReply {
    fn drop(&mut self) {
        self.shared.unregister(self.id);
    }
}

/// Gather handle returned by [`RpcClient::scatter`].
#[derive(Debug)]
pub struct Scatter {
    shared: Arc<ClientShared>,
    /// Correlation id → request index, for calls still outstanding.
    by_id: HashMap<u64, usize>,
    rx: Receiver<(usize, Vec<u8>)>,
    /// Send-time failures, yielded (lowest index first) before any reply.
    immediate: Vec<(usize, Result<Vec<u8>, RpcError>)>,
    /// Scatter-time stamp shared by the wave; `None` with timing off.
    started: Option<Instant>,
}

impl Scatter {
    /// Number of requests not yet yielded.
    pub fn outstanding(&self) -> usize {
        self.by_id.len() + self.immediate.len()
    }

    /// Yields the next settled request as `(request index, result)`, in
    /// completion order. Returns `None` once every request has been
    /// yielded. If `timeout` elapses with no arrival, **one** outstanding
    /// request (the lowest index) is failed with [`RpcError::Timeout`] and
    /// yielded, so repeated calls always terminate.
    pub fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Option<(usize, Result<Vec<u8>, RpcError>)> {
        if let Some(settled) = self.immediate.pop() {
            return Some(settled);
        }
        if self.by_id.is_empty() {
            return None;
        }
        match self.rx.recv_timeout(timeout) {
            Ok((index, payload)) => {
                self.by_id.retain(|_, v| *v != index);
                self.shared.obs.replies.inc();
                if let Some(started) = self.started {
                    self.shared.obs.reply_us.record(started.elapsed());
                }
                Some((index, Ok(payload)))
            }
            Err(_) => {
                let (&id, &index) = self
                    .by_id
                    .iter()
                    .min_by_key(|(_, &v)| v)
                    .expect("outstanding nonempty");
                self.by_id.remove(&id);
                self.shared.unregister(id);
                self.shared.obs.timeouts.inc();
                Some((index, Err(RpcError::Timeout)))
            }
        }
    }

    /// Gathers every remaining reply under one overall `deadline`,
    /// returning results indexed by request position.
    pub fn gather(mut self, deadline: Duration) -> Vec<Result<Vec<u8>, RpcError>> {
        let total = self
            .by_id
            .values()
            .copied()
            .chain(self.immediate.iter().map(|(i, _)| *i))
            .max()
            .map_or(0, |m| m + 1);
        let mut out: Vec<Result<Vec<u8>, RpcError>> = Vec::new();
        out.resize_with(total, || Err(RpcError::Timeout));
        let until = Instant::now() + deadline;
        while self.outstanding() > 0 {
            let remaining = until.saturating_duration_since(Instant::now());
            match self.recv_timeout(remaining) {
                Some((index, result)) => out[index] = result,
                None => break,
            }
        }
        out
    }
}

impl Drop for Scatter {
    fn drop(&mut self) {
        for (&id, _) in self.by_id.iter() {
            self.shared.unregister(id);
        }
    }
}

/// Control handle for a running [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the serving thread to exit after its current poll interval.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Spawns a thread serving requests arriving at `node`: each request's
/// payload is passed to `handler` and the returned bytes are sent back as
/// the response. Non-request messages are ignored.
pub fn serve<F>(net: Arc<Network>, node: NodeId, handler: F) -> ServerHandle
where
    F: Fn(&[u8]) -> Vec<u8> + Send + 'static,
{
    let endpoint = net.register(node);
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let served = repdir_obs::global().counter("rpc.served");
    std::thread::Builder::new()
        .name(format!("repdir-rpc-{node}"))
        .spawn(move || loop {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            match endpoint.recv_timeout(Duration::from_millis(25)) {
                Ok(env) => {
                    if let MsgKind::Request(id) = env.kind {
                        served.inc();
                        let reply = handler(&env.payload);
                        net.send(node, env.src, MsgKind::Response(id), reply);
                    }
                }
                Err(_) => continue,
            }
        })
        .expect("spawn rpc server thread");
    ServerHandle { stop }
}

/// Frames several payloads into one envelope body:
/// `count:u32le | (len:u32le | bytes)*`. The rpc layer is payload-agnostic,
/// so batched scatter envelopes share this framing and typed codecs embed
/// it under their own envelope tag. Inverse of [`unpack_parts`].
pub fn pack_parts(parts: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = parts.iter().map(|p| 4 + p.len()).sum();
    let mut out = Vec::with_capacity(4 + body);
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for part in parts {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(part);
    }
    out
}

/// Splits an envelope body produced by [`pack_parts`] back into its
/// payloads. Returns `None` on malformed input: truncated lengths, short
/// parts, or trailing bytes beyond the declared count.
pub fn unpack_parts(mut bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    let take_u32 = |b: &mut &[u8]| -> Option<u32> {
        let (head, rest) = b.split_first_chunk::<4>()?;
        *b = rest;
        Some(u32::from_le_bytes(*head))
    };
    let count = take_u32(&mut bytes)? as usize;
    // Each part costs at least its 4-byte length prefix: a count larger
    // than the remaining bytes can support is rejected before allocating.
    if count > bytes.len() / 4 {
        return None;
    }
    let mut parts = Vec::with_capacity(count);
    for _ in 0..count {
        let len = take_u32(&mut bytes)? as usize;
        if bytes.len() < len {
            return None;
        }
        let (part, rest) = bytes.split_at(len);
        parts.push(part.to_vec());
        bytes = rest;
    }
    if !bytes.is_empty() {
        return None;
    }
    Some(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{FaultPlan, LatencyModel};

    const TICK: Duration = Duration::from_secs(2);

    #[test]
    fn echo_round_trip() {
        let net = Arc::new(Network::new(1));
        let _server = serve(Arc::clone(&net), NodeId(1), |req| {
            let mut out = req.to_vec();
            out.reverse();
            out
        });
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let reply = client.call(NodeId(1), vec![1, 2, 3], TICK).unwrap();
        assert_eq!(reply, vec![3, 2, 1]);
        assert_eq!(client.node(), NodeId(0));
    }

    #[test]
    fn concurrent_clients_share_a_server() {
        let net = Arc::new(Network::new(2));
        let _server = serve(Arc::clone(&net), NodeId(9), |req| req.to_vec());
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let client = RpcClient::new(net, NodeId(i));
                for round in 0..20u8 {
                    let payload = vec![i as u8, round];
                    let reply = client.call(NodeId(9), payload.clone(), TICK).unwrap();
                    assert_eq!(reply, payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_calls_through_one_client() {
        // The scatter-gather prerequisite: many threads sharing ONE client
        // must each get their own reply, never a neighbor's.
        let net = Arc::new(Network::new(20));
        let _server = serve(Arc::clone(&net), NodeId(9), |req| req.to_vec());
        let client = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let client = Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                for round in 0..25u8 {
                    let payload = vec![t, round];
                    let reply = client.call(NodeId(9), payload.clone(), TICK).unwrap();
                    assert_eq!(reply, payload, "thread {t} round {round}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn call_async_overlaps_requests() {
        // Two calls in flight at once over a latency fabric: total wall
        // clock is ~one latency, not two.
        let net = Arc::new(Network::new(21));
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        net.set_fault_plan(FaultPlan {
            latency: LatencyModel::fixed(Duration::from_millis(40)),
            ..FaultPlan::default()
        });
        let start = Instant::now();
        let a = client.call_async(NodeId(1), vec![1]).unwrap();
        let b = client.call_async(NodeId(1), vec![2]).unwrap();
        assert_eq!(a.wait(TICK).unwrap(), vec![1]);
        assert_eq!(b.wait(TICK).unwrap(), vec![2]);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(150),
            "two overlapped 80ms round trips took {elapsed:?}"
        );
    }

    #[test]
    fn scatter_yields_replies_as_they_arrive() {
        let net = Arc::new(Network::new(22));
        let mut servers = Vec::new();
        for n in 1..=3u32 {
            servers.push(serve(Arc::clone(&net), NodeId(n), move |req| {
                let mut out = req.to_vec();
                out.push(n as u8);
                out
            }));
        }
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let mut scatter = client.scatter(vec![
            (NodeId(1), vec![10]),
            (NodeId(2), vec![20]),
            (NodeId(3), vec![30]),
        ]);
        assert_eq!(scatter.outstanding(), 3);
        let mut seen = [false; 3];
        while let Some((index, result)) = scatter.recv_timeout(TICK) {
            let payload = result.unwrap();
            assert_eq!(payload, vec![(index as u8 + 1) * 10, index as u8 + 1]);
            seen[index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scatter_reports_unreachable_immediately_and_gathers_rest() {
        let net = Arc::new(Network::new(23));
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let scatter = client.scatter(vec![
            (NodeId(1), vec![7]),
            (NodeId(99), vec![8]), // never registered
        ]);
        let results = scatter.gather(TICK);
        assert_eq!(results[0], Ok(vec![7]));
        assert_eq!(results[1], Err(RpcError::Unreachable(NodeId(99))));
    }

    #[test]
    fn timeout_when_server_partitioned() {
        let net = Arc::new(Network::new(3));
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        net.partition(&[&[NodeId(0)], &[NodeId(1)]]);
        let err = client
            .call(NodeId(1), vec![1], Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // Heal: calls work again, and the stale (nonexistent) response
        // cannot confuse the new call.
        net.heal();
        assert!(client.call(NodeId(1), vec![2], TICK).is_ok());
    }

    #[test]
    fn unreachable_destination() {
        let net = Arc::new(Network::new(4));
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let err = client.call(NodeId(42), vec![], TICK).unwrap_err();
        assert_eq!(err, RpcError::Unreachable(NodeId(42)));
    }

    #[test]
    fn stale_response_discarded_after_timeout() {
        // Server responds slower than the first call's deadline; the second
        // call must not consume the first call's late reply.
        let net = Arc::new(Network::new(5));
        net.set_fault_plan(FaultPlan {
            latency: LatencyModel::fixed(Duration::from_millis(40)),
            ..FaultPlan::default()
        });
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let err = client
            .call(NodeId(1), vec![111], Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        let reply = client.call(NodeId(1), vec![222], TICK).unwrap();
        assert_eq!(reply, vec![222], "late reply 111 must not leak into call 2");
    }

    #[test]
    fn server_stops_on_request() {
        let net = Arc::new(Network::new(6));
        let server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        client.call(NodeId(1), vec![1], TICK).unwrap();
        server.stop();
        std::thread::sleep(Duration::from_millis(60));
        // Once the serving thread exits its mailbox closes: depending on
        // timing the call fails unreachable (closed mailbox seen at send)
        // or times out (request sat in the dying mailbox).
        let err = client
            .call(NodeId(1), vec![2], Duration::from_millis(80))
            .unwrap_err();
        assert!(
            matches!(err, RpcError::Timeout | RpcError::Unreachable(_)),
            "{err:?}"
        );
    }

    #[test]
    fn survives_duplicated_requests() {
        // Duplicated requests produce duplicated responses; the client uses
        // the first and the router discards the duplicate (its correlation
        // id is already unregistered).
        let net = Arc::new(Network::new(7));
        net.set_fault_plan(FaultPlan {
            duplicate_prob: 1.0,
            ..FaultPlan::default()
        });
        let _server = serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        for i in 0..10u8 {
            let reply = client.call(NodeId(1), vec![i], TICK).unwrap();
            assert_eq!(reply, vec![i]);
        }
    }

    #[test]
    fn hedged_call_beats_a_slow_primary() {
        let net = Arc::new(Network::new(30));
        for n in 1..=2u32 {
            serve(Arc::clone(&net), NodeId(n), move |req| {
                let mut out = req.to_vec();
                out.push(n as u8);
                out
            });
        }
        // The ranked-first member is slow; the spare answers immediately.
        net.set_node_latency(NodeId(1), LatencyModel::fixed(Duration::from_millis(120)));
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let won_before = repdir_obs::global().counter("rpc.hedge.won").get();
        let start = Instant::now();
        let reply = client
            .call_hedged(
                &[NodeId(1), NodeId(2)],
                vec![7],
                Duration::from_millis(15),
                TICK,
            )
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(reply, vec![7, 2], "the hedge's reply wins");
        assert!(
            elapsed < Duration::from_millis(110),
            "hedged call still paid the slow primary: {elapsed:?}"
        );
        assert!(repdir_obs::global().counter("rpc.hedge.won").get() > won_before);
    }

    #[test]
    fn hedged_call_sticks_with_a_fast_primary() {
        let net = Arc::new(Network::new(31));
        for n in 1..=2u32 {
            serve(Arc::clone(&net), NodeId(n), move |req| {
                let mut out = req.to_vec();
                out.push(n as u8);
                out
            });
        }
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        // The primary answers well inside the hedge delay: no hedge fires
        // and the primary's reply is the one returned.
        let reply = client
            .call_hedged(
                &[NodeId(1), NodeId(2)],
                vec![9],
                Duration::from_millis(500),
                TICK,
            )
            .unwrap();
        assert_eq!(reply, vec![9, 1]);
    }

    #[test]
    fn hedged_call_counts_a_losing_hedge_as_wasted() {
        let net = Arc::new(Network::new(32));
        for n in 1..=2u32 {
            serve(Arc::clone(&net), NodeId(n), move |req| {
                let mut out = req.to_vec();
                out.push(n as u8);
                out
            });
        }
        // Primary is slow enough to trigger the hedge but still beats the
        // even-slower spare: the hedge message was pure overhead.
        net.set_node_latency(NodeId(1), LatencyModel::fixed(Duration::from_millis(50)));
        net.set_node_latency(NodeId(2), LatencyModel::fixed(Duration::from_millis(250)));
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        let wasted_before = repdir_obs::global().counter("rpc.hedge.wasted").get();
        let reply = client
            .call_hedged(
                &[NodeId(1), NodeId(2)],
                vec![4],
                Duration::from_millis(10),
                TICK,
            )
            .unwrap();
        assert_eq!(reply, vec![4, 1], "primary recovered and won");
        assert!(repdir_obs::global().counter("rpc.hedge.wasted").get() > wasted_before);
    }

    #[test]
    fn hedged_call_skips_unreachable_destinations() {
        let net = Arc::new(Network::new(33));
        serve(Arc::clone(&net), NodeId(2), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        // NodeId(9) never registered: substitution happens at send time,
        // costing nothing.
        let start = Instant::now();
        let reply = client
            .call_hedged(
                &[NodeId(9), NodeId(2)],
                vec![5],
                Duration::from_millis(200),
                TICK,
            )
            .unwrap();
        assert_eq!(reply, vec![5]);
        assert!(start.elapsed() < Duration::from_millis(150));
        // Every destination unreachable: the error says so.
        let err = client
            .call_hedged(
                &[NodeId(9), NodeId(8)],
                vec![],
                Duration::from_millis(5),
                TICK,
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Unreachable(NodeId(8)));
    }

    #[test]
    fn hedged_call_times_out_when_nobody_answers() {
        let net = Arc::new(Network::new(34));
        serve(Arc::clone(&net), NodeId(1), |req| req.to_vec());
        serve(Arc::clone(&net), NodeId(2), |req| req.to_vec());
        let client = RpcClient::new(Arc::clone(&net), NodeId(0));
        net.partition(&[&[NodeId(0)], &[NodeId(1), NodeId(2)]]);
        let err = client
            .call_hedged(
                &[NodeId(1), NodeId(2)],
                vec![1],
                Duration::from_millis(10),
                Duration::from_millis(60),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // A late reply from either straggler must not leak into the next
        // call.
        net.heal();
        let reply = client.call(NodeId(1), vec![2], TICK).unwrap();
        assert_eq!(reply, vec![2]);
    }

    #[test]
    fn client_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        // The client itself is shared across fan-out threads; the one-shot
        // handles only move to a single waiter.
        assert_send_sync::<RpcClient>();
        assert_send::<PendingReply>();
        assert_send::<Scatter>();
    }

    #[test]
    fn parts_round_trip() {
        let cases: Vec<Vec<Vec<u8>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![1, 2, 3]],
            vec![vec![0xff; 300], vec![], vec![7]],
        ];
        for parts in cases {
            let packed = pack_parts(&parts);
            assert_eq!(unpack_parts(&packed), Some(parts));
        }
    }

    #[test]
    fn malformed_part_framing_rejected() {
        let packed = pack_parts(&[vec![1, 2], vec![3]]);
        // Every strict prefix is truncated somewhere: part count, a length,
        // or part bytes.
        for cut in 0..packed.len() {
            assert_eq!(unpack_parts(&packed[..cut]), None, "prefix {cut}");
        }
        // Trailing junk beyond the declared count is rejected too.
        let mut long = packed.clone();
        long.push(0);
        assert_eq!(unpack_parts(&long), None);
        // A count the body cannot possibly satisfy is rejected before any
        // allocation.
        let absurd = u32::MAX.to_le_bytes().to_vec();
        assert_eq!(unpack_parts(&absurd), None);
    }
}
