//! The message fabric: registration, delivery, and fault injection.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::channel::{unbounded, Receiver, Sender};
use repdir_core::rng::StdRng;
use repdir_core::sync::{Condvar, Mutex, MutexGuard};
use repdir_obs::Counter;

/// Identifies one node on the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The kind of a delivered message (RPC correlation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// A request expecting a response with the same correlation id.
    Request(u64),
    /// A response to the request with this correlation id.
    Response(u64),
}

/// One delivered message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender.
    pub src: NodeId,
    /// Recipient.
    pub dst: NodeId,
    /// Request/response discriminator and correlation id.
    pub kind: MsgKind,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Message latency: uniform in `[base, base + jitter]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Minimum one-way delay.
    pub base: Duration,
    /// Additional uniformly distributed delay.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Zero delay: messages deliver synchronously.
    pub const ZERO: LatencyModel = LatencyModel {
        base: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// A fixed delay with no jitter.
    pub fn fixed(base: Duration) -> Self {
        LatencyModel {
            base,
            jitter: Duration::ZERO,
        }
    }

    fn is_zero(&self) -> bool {
        self.base.is_zero() && self.jitter.is_zero()
    }
}

/// Fault-injection configuration, applied to every message.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub duplicate_prob: f64,
    /// Delivery latency.
    pub latency: LatencyModel,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            latency: LatencyModel::ZERO,
        }
    }
}

/// Cumulative delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted to the fabric.
    pub sent: u64,
    /// Messages handed to a destination mailbox.
    pub delivered: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Messages blocked by a partition.
    pub partitioned: u64,
    /// Extra deliveries from duplication.
    pub duplicated: u64,
}

struct Scheduled {
    due: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Fabric counters mirrored into the process-wide obs registry (`net.*`),
/// resolved once per network. [`NetStats`] stays the per-network exact
/// record; these aggregate across every network in the process.
struct FabricObs {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    partitioned: Counter,
    duplicated: Counter,
}

impl FabricObs {
    fn new() -> Self {
        let g = repdir_obs::global();
        FabricObs {
            sent: g.counter("net.sent"),
            delivered: g.counter("net.delivered"),
            dropped: g.counter("net.dropped"),
            partitioned: g.counter("net.partitioned"),
            duplicated: g.counter("net.duplicated"),
        }
    }
}

struct Shared {
    mailboxes: Mutex<HashMap<NodeId, Sender<Envelope>>>,
    /// Pairs of nodes that cannot currently exchange messages.
    blocked: Mutex<HashSet<(NodeId, NodeId)>>,
    plan: Mutex<FaultPlan>,
    /// Per-destination latency overrides (skewed fabrics): messages *to*
    /// these nodes ignore the plan's latency.
    node_latency: Mutex<HashMap<NodeId, LatencyModel>>,
    /// Per-destination drop-probability overrides (flaky members): messages
    /// *to* these nodes ignore the plan's drop probability.
    node_drop: Mutex<HashMap<NodeId, f64>>,
    obs: FabricObs,
    rng: Mutex<StdRng>,
    stats: Mutex<NetStats>,
    queue: Mutex<BinaryHeap<Scheduled>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    seq: AtomicU64,
}

/// A simulated network connecting [`Endpoint`]s.
///
/// Messages pass through fault injection (drop, duplicate, latency) and
/// partition checks before landing in the destination's mailbox. Latency is
/// served by a background delivery thread; with zero latency, delivery is
/// synchronous.
///
/// # Examples
///
/// ```
/// use repdir_net::{Network, NodeId};
///
/// let net = Network::new(42);
/// let a = net.register(NodeId(0));
/// let b = net.register(NodeId(1));
/// net.send(NodeId(0), NodeId(1), repdir_net::MsgKind::Request(1), b"hi".to_vec());
/// let msg = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
/// assert_eq!(msg.payload, b"hi");
/// assert_eq!(msg.src, NodeId(0));
/// # drop(a);
/// ```
pub struct Network {
    shared: Arc<Shared>,
}

impl Network {
    /// Creates a fault-free, zero-latency network; reconfigure with
    /// [`set_fault_plan`](Network::set_fault_plan). The seed drives all
    /// fault-injection randomness.
    pub fn new(seed: u64) -> Self {
        let shared = Arc::new(Shared {
            mailboxes: Mutex::new(HashMap::new()),
            blocked: Mutex::new(HashSet::new()),
            plan: Mutex::new(FaultPlan::default()),
            node_latency: Mutex::new(HashMap::new()),
            node_drop: Mutex::new(HashMap::new()),
            obs: FabricObs::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stats: Mutex::new(NetStats::default()),
            queue: Mutex::new(BinaryHeap::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        let worker = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("repdir-net-delivery".into())
            .spawn(move || delivery_loop(worker))
            .expect("spawn delivery thread");
        Network { shared }
    }

    /// Registers a node and returns its endpoint. Re-registering a node
    /// replaces its mailbox (the old endpoint stops receiving).
    pub fn register(&self, node: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        self.shared.mailboxes.lock().insert(node, tx);
        Endpoint { node, rx }
    }

    /// Replaces the fault plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.shared.plan.lock() = plan;
    }

    /// Overrides delivery latency for messages *destined to* `node`,
    /// modelling a slow or distant replica on an otherwise uniform fabric
    /// (the plan's drop/duplicate probabilities still apply). The
    /// `latency_policy` bench builds its skewed fabric from this.
    pub fn set_node_latency(&self, node: NodeId, latency: LatencyModel) {
        self.shared.node_latency.lock().insert(node, latency);
    }

    /// Removes a per-node latency override; `node` reverts to the plan's
    /// latency.
    pub fn clear_node_latency(&self, node: NodeId) {
        self.shared.node_latency.lock().remove(&node);
    }

    /// Overrides the drop probability for messages *destined to* `node`,
    /// modelling one flaky replica on an otherwise healthy fabric (the
    /// plan's latency and duplicate probability still apply). The
    /// `hedge_bench` builds its flaky member from this.
    pub fn set_node_drop(&self, node: NodeId, drop_prob: f64) {
        self.shared.node_drop.lock().insert(node, drop_prob);
    }

    /// Removes a per-node drop override; `node` reverts to the plan's drop
    /// probability.
    pub fn clear_node_drop(&self, node: NodeId) {
        self.shared.node_drop.lock().remove(&node);
    }

    /// Blocks all traffic between `a` and `b` (both directions).
    pub fn block(&self, a: NodeId, b: NodeId) {
        let mut blocked = self.shared.blocked.lock();
        blocked.insert((a, b));
        blocked.insert((b, a));
    }

    /// Splits nodes into isolated groups: traffic crosses group boundaries
    /// no more. Clears previous blocks.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        let mut blocked = self.shared.blocked.lock();
        blocked.clear();
        for (gi, ga) in groups.iter().enumerate() {
            for (gj, gb) in groups.iter().enumerate() {
                if gi == gj {
                    continue;
                }
                for &a in ga.iter() {
                    for &b in gb.iter() {
                        blocked.insert((a, b));
                    }
                }
            }
        }
    }

    /// Removes all partitions and blocks.
    pub fn heal(&self) {
        self.shared.blocked.lock().clear();
    }

    /// Submits a message. Returns `false` if the destination was never
    /// registered (the message vanishes, as on a real network).
    pub fn send(&self, src: NodeId, dst: NodeId, kind: MsgKind, payload: Vec<u8>) -> bool {
        let shared = &self.shared;
        shared.stats.lock().sent += 1;
        shared.obs.sent.inc();
        if shared.blocked.lock().contains(&(src, dst)) {
            shared.stats.lock().partitioned += 1;
            shared.obs.partitioned.inc();
            return true; // silently eaten, like a real partition
        }
        let plan = shared.plan.lock().clone();
        let latency = shared
            .node_latency
            .lock()
            .get(&dst)
            .copied()
            .unwrap_or(plan.latency);
        let drop_prob = shared
            .node_drop
            .lock()
            .get(&dst)
            .copied()
            .unwrap_or(plan.drop_prob);
        let (dropped, duplicate, delay) = {
            let mut rng = shared.rng.lock();
            let dropped = drop_prob > 0.0 && rng.gen_bool(drop_prob.clamp(0.0, 1.0));
            let duplicate =
                plan.duplicate_prob > 0.0 && rng.gen_bool(plan.duplicate_prob.clamp(0.0, 1.0));
            let delay = if latency.is_zero() {
                Duration::ZERO
            } else {
                let jitter_ns = latency.jitter.as_nanos() as u64;
                let extra = if jitter_ns == 0 {
                    0
                } else {
                    rng.gen_range(0..=jitter_ns)
                };
                latency.base + Duration::from_nanos(extra)
            };
            (dropped, duplicate, delay)
        };
        if dropped {
            shared.stats.lock().dropped += 1;
            shared.obs.dropped.inc();
            return true;
        }
        let env = Envelope {
            src,
            dst,
            kind,
            payload,
        };
        let copies = if duplicate {
            shared.stats.lock().duplicated += 1;
            shared.obs.duplicated.inc();
            2
        } else {
            1
        };
        let mut ok = true;
        for _ in 0..copies {
            ok &= self.deliver_after(env.clone(), delay);
        }
        ok
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> NetStats {
        *self.shared.stats.lock()
    }

    fn deliver_after(&self, env: Envelope, delay: Duration) -> bool {
        if delay.is_zero() {
            return deliver_now(&self.shared, env);
        }
        let due = Instant::now() + delay;
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.shared.queue.lock().push(Scheduled { due, seq, env });
        self.shared.queue_cv.notify_one();
        true
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.shared.mailboxes.lock().len())
            .field("stats", &*self.shared.stats.lock())
            .finish()
    }
}

fn deliver_now(shared: &Shared, env: Envelope) -> bool {
    let tx = shared.mailboxes.lock().get(&env.dst).cloned();
    match tx {
        Some(tx) if tx.send(env).is_ok() => {
            shared.stats.lock().delivered += 1;
            shared.obs.delivered.inc();
            true
        }
        _ => false,
    }
}

fn delivery_loop(shared: Arc<Shared>) {
    let mut queue = shared.queue.lock();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        // Deliver everything due.
        while queue.peek().is_some_and(|s| s.due <= now) {
            let s = queue.pop().expect("peeked");
            // Drop the lock while delivering to avoid deadlocking with
            // senders holding mailboxes.
            MutexGuard::unlocked(&mut queue, || {
                deliver_now(&shared, s.env);
            });
        }
        match queue.peek().map(|s| s.due) {
            Some(due) => {
                shared.queue_cv.wait_until(&mut queue, due);
            }
            None => {
                shared.queue_cv.wait(&mut queue);
            }
        }
    }
}

/// A node's mailbox on the network.
#[derive(Debug)]
pub struct Endpoint {
    node: NodeId,
    rx: Receiver<Envelope>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Blocks until a message arrives or the deadline passes.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError`](repdir_core::channel::RecvTimeoutError) on
    /// timeout or disconnect.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Envelope, repdir_core::channel::RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(500);

    #[test]
    fn zero_latency_delivery() {
        let net = Network::new(1);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        assert!(net.send(NodeId(0), NodeId(1), MsgKind::Request(7), vec![1, 2]));
        let env = b.recv_timeout(TICK).unwrap();
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.kind, MsgKind::Request(7));
        assert_eq!(env.payload, vec![1, 2]);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn latency_delays_but_delivers() {
        let net = Network::new(2);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.set_fault_plan(FaultPlan {
            latency: LatencyModel::fixed(Duration::from_millis(30)),
            ..FaultPlan::default()
        });
        let sent_at = Instant::now();
        net.send(NodeId(0), NodeId(1), MsgKind::Request(1), vec![9]);
        let env = b.recv_timeout(TICK).unwrap();
        assert!(sent_at.elapsed() >= Duration::from_millis(25));
        assert_eq!(env.payload, vec![9]);
    }

    #[test]
    fn node_latency_override_delays_only_that_destination() {
        let net = Network::new(7);
        let _a = net.register(NodeId(0));
        let fast = net.register(NodeId(1));
        let slow = net.register(NodeId(2));
        net.set_node_latency(NodeId(2), LatencyModel::fixed(Duration::from_millis(40)));

        let sent_at = Instant::now();
        net.send(NodeId(0), NodeId(1), MsgKind::Request(1), vec![1]);
        net.send(NodeId(0), NodeId(2), MsgKind::Request(2), vec![2]);
        fast.recv_timeout(TICK).unwrap();
        let fast_elapsed = sent_at.elapsed();
        slow.recv_timeout(TICK).unwrap();
        let slow_elapsed = sent_at.elapsed();
        assert!(
            fast_elapsed < Duration::from_millis(40),
            "fast member saw the override"
        );
        assert!(slow_elapsed >= Duration::from_millis(35));

        net.clear_node_latency(NodeId(2));
        let sent_at = Instant::now();
        net.send(NodeId(0), NodeId(2), MsgKind::Request(3), vec![3]);
        slow.recv_timeout(TICK).unwrap();
        assert!(sent_at.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn node_drop_override_eats_only_that_destination() {
        let net = Network::new(11);
        let healthy = net.register(NodeId(1));
        let flaky = net.register(NodeId(2));
        net.set_node_drop(NodeId(2), 1.0);

        for i in 0..5 {
            net.send(NodeId(0), NodeId(1), MsgKind::Request(i), vec![1]);
            net.send(NodeId(0), NodeId(2), MsgKind::Request(100 + i), vec![2]);
        }
        for _ in 0..5 {
            healthy.recv_timeout(TICK).unwrap();
        }
        assert!(flaky.recv_timeout(Duration::from_millis(30)).is_err());
        assert_eq!(net.stats().dropped, 5);

        net.clear_node_drop(NodeId(2));
        net.send(NodeId(0), NodeId(2), MsgKind::Request(200), vec![3]);
        flaky.recv_timeout(TICK).unwrap();
    }

    #[test]
    fn fully_dropped_node_delivers_zero_packets() {
        // drop_prob = 1.0 must be certain, not merely overwhelmingly
        // likely: the RNG draw occasionally rounds to exactly 1.0, and a
        // strict `draw < p` comparison let those packets through. Over
        // hundreds of sends, not a single packet may reach the node.
        let net = Network::new(42);
        let dead = net.register(NodeId(2));
        net.set_node_drop(NodeId(2), 1.0);
        let sends = 512u64;
        for i in 0..sends {
            net.send(NodeId(0), NodeId(2), MsgKind::Request(i), vec![7]);
        }
        assert!(dead.try_recv().is_none(), "fully dropped node got a packet");
        let stats = net.stats();
        assert_eq!(stats.dropped, sends);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn latency_preserves_order_for_equal_delay() {
        let net = Network::new(3);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.set_fault_plan(FaultPlan {
            latency: LatencyModel::fixed(Duration::from_millis(10)),
            ..FaultPlan::default()
        });
        for i in 0..10u8 {
            net.send(NodeId(0), NodeId(1), MsgKind::Request(i as u64), vec![i]);
        }
        for i in 0..10u8 {
            let env = b.recv_timeout(TICK).unwrap();
            assert_eq!(env.payload, vec![i]);
        }
    }

    #[test]
    fn jitter_can_reorder_messages() {
        let net = Network::new(77);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.set_fault_plan(FaultPlan {
            latency: LatencyModel {
                base: Duration::from_millis(1),
                jitter: Duration::from_millis(20),
            },
            ..FaultPlan::default()
        });
        for i in 0..20u8 {
            net.send(NodeId(0), NodeId(1), MsgKind::Request(i as u64), vec![i]);
        }
        let mut received = Vec::new();
        for _ in 0..20 {
            received.push(b.recv_timeout(TICK).unwrap().payload[0]);
        }
        let mut sorted = received.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u8>>(), "all delivered");
        assert_ne!(
            received, sorted,
            "with 20x jitter over base, some reordering is overwhelmingly likely"
        );
    }

    #[test]
    fn drops_are_counted_and_messages_vanish() {
        let net = Network::new(4);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.set_fault_plan(FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::default()
        });
        net.send(NodeId(0), NodeId(1), MsgKind::Request(1), vec![]);
        assert!(b.recv_timeout(Duration::from_millis(30)).is_err());
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let net = Network::new(5);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.set_fault_plan(FaultPlan {
            duplicate_prob: 1.0,
            ..FaultPlan::default()
        });
        net.send(NodeId(0), NodeId(1), MsgKind::Request(1), vec![3]);
        assert_eq!(b.recv_timeout(TICK).unwrap().payload, vec![3]);
        assert_eq!(b.recv_timeout(TICK).unwrap().payload, vec![3]);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let net = Network::new(6);
        let a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        net.partition(&[&[NodeId(0)], &[NodeId(1)]]);
        net.send(NodeId(0), NodeId(1), MsgKind::Request(1), vec![]);
        net.send(NodeId(1), NodeId(0), MsgKind::Request(2), vec![]);
        assert!(b.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(a.recv_timeout(Duration::from_millis(30)).is_err());
        assert_eq!(net.stats().partitioned, 2);
        net.heal();
        net.send(NodeId(0), NodeId(1), MsgKind::Request(3), vec![]);
        assert!(b.recv_timeout(TICK).is_ok());
    }

    #[test]
    fn block_is_bidirectional_and_pairwise() {
        let net = Network::new(7);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        let c = net.register(NodeId(2));
        net.block(NodeId(0), NodeId(1));
        net.send(NodeId(0), NodeId(1), MsgKind::Request(1), vec![]);
        net.send(NodeId(0), NodeId(2), MsgKind::Request(2), vec![]);
        assert!(b.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(c.recv_timeout(TICK).is_ok());
    }

    #[test]
    fn unregistered_destination_reports_failure() {
        let net = Network::new(8);
        let _a = net.register(NodeId(0));
        assert!(!net.send(NodeId(0), NodeId(9), MsgKind::Request(1), vec![]));
    }

    #[test]
    fn try_recv_nonblocking() {
        let net = Network::new(9);
        let _a = net.register(NodeId(0));
        let b = net.register(NodeId(1));
        assert!(b.try_recv().is_none());
        net.send(NodeId(0), NodeId(1), MsgKind::Response(4), vec![8]);
        // Zero latency: synchronous delivery.
        let env = b.try_recv().unwrap();
        assert_eq!(env.kind, MsgKind::Response(4));
    }

    #[test]
    fn network_shutdown_stops_delivery_thread() {
        let net = Network::new(10);
        let _a = net.register(NodeId(0));
        drop(net); // must not hang or panic
    }
}
