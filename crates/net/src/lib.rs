//! # repdir-net
//!
//! A simulated network substrate for replicated-directory experiments.
//!
//! The paper's operations are expressed as remote procedure calls —
//! `Send(<procedure invocation>) to (<object instance>)` (§3) — with "error
//! responses, such as timeouts … not considered". This crate supplies that
//! RPC primitive over an in-process message fabric **with** the failure
//! modes a real deployment faces, so the suite algorithm is exercised
//! against them:
//!
//! * [`Network`] / [`Endpoint`] — registration, mailboxes, and delivery with
//!   configurable latency ([`LatencyModel`]), message drop and duplication
//!   ([`FaultPlan`]), and partitions ([`Network::partition`]);
//! * [`RpcClient`] / [`serve`] — correlated request/response with deadlines,
//!   stale-reply discarding, and scatter-gather concurrency: a router thread
//!   demultiplexes replies by correlation id, so one client supports any
//!   number of concurrent in-flight calls ([`RpcClient::call_async`]) and
//!   N-way fan-out with replies in arrival order ([`RpcClient::scatter`]).
//!
//! Substitution note (see `DESIGN.md`): the repro hint suggests tokio; the
//! offline crate set excludes it, so replica simulation runs on
//! `std::thread` + the in-tree `repdir_core::channel` substrate, which
//! serves laptop-scale suites equally well.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fabric;
mod rpc;

pub use fabric::{Endpoint, Envelope, FaultPlan, LatencyModel, MsgKind, NetStats, Network, NodeId};
pub use rpc::{
    pack_parts, serve, unpack_parts, PendingReply, RpcClient, RpcError, Scatter, ServerHandle,
};
