//! An interactive shell over a replicated directory — poke at the
//! algorithm by hand: insert and delete entries, fail representatives,
//! script quorums, and inspect per-representative state (including ghosts)
//! in the paper's figure notation.
//!
//! ```text
//! cargo run --example repl
//! # or scripted:
//! printf 'insert a 1\ninsert b 2\nfail 2\ndelete a\nheal 2\nstate\nquit\n' \
//!   | cargo run --example repl
//! ```

use std::io::{self, BufRead, Write};

use repdir::core::suite::{DirSuite, FixedPolicy, RandomPolicy, SuiteConfig};
use repdir::core::{Key, LocalRep, RepId, Value};

const HELP: &str = "\
commands:
  insert <key> <value>     DirSuiteInsert
  update <key> <value>     DirSuiteUpdate
  lookup <key>             DirSuiteLookup (shows winning version)
  delete <key>             DirSuiteDelete (shows pred/succ/ghost stats)
  scan                     list the suite's logical contents
  state                    per-representative physical state (incl. ghosts)
  fail <rep>               take a representative down (0-based index)
  heal <rep>               bring it back
  quorum <i> <j> ...       pin quorum preference order (FixedPolicy)
  quorum random            back to uniformly random quorums
  help                     this text
  quit                     exit";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
    let mut suite = DirSuite::new(
        clients,
        SuiteConfig::symmetric(3, 2, 2)?,
        Box::new(RandomPolicy::new(0xD1)),
    )?;
    println!("repdir shell — 3-2-2 suite (reps A, B, C). Type `help` for commands.");

    let stdin = io::stdin();
    loop {
        print!("repdir> ");
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = match parts.as_slice() {
            [] => Ok(()),
            ["quit" | "exit"] => break,
            ["help"] => {
                println!("{HELP}");
                Ok(())
            }
            ["insert", key, value] => suite
                .insert(&Key::from(*key), &Value::from(*value))
                .map(|out| println!("  inserted v{} via {:?}", out.version, out.quorum)),
            ["update", key, value] => suite
                .update(&Key::from(*key), &Value::from(*value))
                .map(|out| println!("  updated to v{} via {:?}", out.version, out.quorum)),
            ["lookup", key] => suite.lookup(&Key::from(*key)).map(|out| {
                if out.present {
                    println!(
                        "  present v{} = {:?} (quorum {:?})",
                        out.version,
                        out.value
                            .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
                            .unwrap_or_default(),
                        out.quorum
                    );
                } else {
                    println!(
                        "  not present (gap v{}, quorum {:?})",
                        out.version, out.quorum
                    );
                }
            }),
            ["delete", key] => suite.delete(&Key::from(*key)).map(|out| {
                println!(
                    "  coalesced ({:?}, {:?}) at v{}; {} neighbor copies, {} ghosts swept",
                    out.predecessor,
                    out.successor,
                    out.gap_version,
                    out.copies_inserted,
                    out.ghosts_deleted
                );
            }),
            ["scan"] => suite.scan().map(|entries| {
                if entries.is_empty() {
                    println!("  (empty)");
                }
                for (k, v) in entries {
                    println!("  {k} = {}", String::from_utf8_lossy(v.as_bytes()));
                }
            }),
            ["state"] => {
                for i in 0..suite.member_count() {
                    println!(
                        "  {} {}: {:?}",
                        RepId(i as u32).letter(),
                        if suite.member(i).is_available() {
                            "up  "
                        } else {
                            "DOWN"
                        },
                        suite.member(i).snapshot()
                    );
                }
                Ok(())
            }
            ["fail", idx] => match idx.parse::<usize>() {
                Ok(i) if i < suite.member_count() => {
                    suite.member(i).set_available(false);
                    println!("  representative {} is down", RepId(i as u32).letter());
                    Ok(())
                }
                _ => {
                    println!("  no such representative");
                    Ok(())
                }
            },
            ["heal", idx] => match idx.parse::<usize>() {
                Ok(i) if i < suite.member_count() => {
                    suite.member(i).set_available(true);
                    println!("  representative {} is back", RepId(i as u32).letter());
                    Ok(())
                }
                _ => {
                    println!("  no such representative");
                    Ok(())
                }
            },
            ["quorum", "random"] => {
                suite.set_policy(Box::new(RandomPolicy::new(0xD2)));
                println!("  quorum selection: uniformly random");
                Ok(())
            }
            ["quorum", rest @ ..] => {
                let order: Result<Vec<usize>, _> = rest.iter().map(|s| s.parse()).collect();
                match order {
                    Ok(order) if !order.is_empty() => {
                        println!("  quorum preference pinned to {order:?}");
                        suite.set_policy(Box::new(FixedPolicy::with_order(order)));
                        Ok(())
                    }
                    _ => {
                        println!("  usage: quorum <i> <j> ... | quorum random");
                        Ok(())
                    }
                }
            }
            _ => {
                println!("  unrecognized; `help` lists commands");
                Ok(())
            }
        };
        if let Err(e) = result {
            println!("  error: {e}");
        }
    }
    println!("bye");
    Ok(())
}
