//! A fault-tolerant name service on the full transactional stack: range
//! locks, write-ahead logs, crash recovery, concurrent clients, failure
//! injection — the production face of the algorithm.
//!
//! ```text
//! cargo run --example fault_tolerant_store
//! ```

use std::sync::Arc;

use repdir::core::suite::SuiteConfig;
use repdir::core::{Key, Value};
use repdir::replica::ReplicatedDirectory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Arc::new(ReplicatedDirectory::new(
        SuiteConfig::symmetric(3, 2, 2)?,
        7,
    )?);
    println!(
        "name service on a {} suite (2PL + WAL per representative)",
        dir.config()
    );

    // Concurrent clients registering names in disjoint namespaces.
    let mut handles = Vec::new();
    for worker in 0..4u32 {
        let dir = Arc::clone(&dir);
        handles.push(std::thread::spawn(move || {
            for i in 0..25u32 {
                let name = Key::from(format!("svc/{worker:02}/{i:03}").as_str());
                let addr = Value::from(format!("10.0.{worker}.{i}").as_str());
                dir.insert(&name, &addr).expect("insert");
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    println!("4 clients registered 100 names concurrently (disjoint ranges: no lock waits needed)");

    // A multi-key transaction: move a service atomically.
    let mut txn = dir.begin();
    let old = Key::from("svc/00/000");
    let new = Key::from("svc/99/000");
    let addr = txn.suite_mut().lookup(&old)?.value.expect("present");
    txn.suite_mut().insert(&new, &addr)?;
    txn.suite_mut().delete(&old)?;
    txn.commit();
    println!("atomic rename committed: {old:?} -> {new:?}");
    assert!(!dir.lookup(&old)?.present);
    assert!(dir.lookup(&new)?.present);

    // An abandoned transaction rolls back cleanly.
    {
        let mut txn = dir.begin();
        txn.suite_mut()
            .insert(&Key::from("svc/tmp"), &Value::from("x"))?;
        // dropped without commit
    }
    assert!(!dir.lookup(&Key::from("svc/tmp"))?.present);
    println!("abandoned transaction rolled back (locks released, no residue)");

    // One representative fails: service continues.
    dir.reps()[1].set_available(false);
    dir.insert(&Key::from("svc/emergency"), &Value::from("10.9.9.9"))?;
    assert!(dir.lookup(&Key::from("svc/99/000"))?.present);
    dir.reps()[1].set_available(true);
    println!("served reads and writes with representative B down");

    // Power failure across the fleet: every representative crashes, losing
    // volatile state, then recovers from its write-ahead log.
    for rep in dir.reps() {
        rep.crash_and_recover()?;
    }
    assert!(dir.lookup(&Key::from("svc/emergency"))?.present);
    assert!(dir.lookup(&Key::from("svc/99/000"))?.present);
    assert!(!dir.lookup(&old)?.present);
    println!("full-fleet crash + WAL recovery: all committed data intact");

    let total = 100 + 1; // registrations + emergency (rename is net zero)
    let mut present = 0;
    for worker in 0..4u32 {
        for i in 0..25u32 {
            let name = if worker == 0 && i == 0 {
                Key::from("svc/99/000")
            } else {
                Key::from(format!("svc/{worker:02}/{i:03}").as_str())
            };
            if dir.lookup(&name)?.present {
                present += 1;
            }
        }
    }
    if dir.lookup(&Key::from("svc/emergency"))?.present {
        present += 1;
    }
    println!("verified {present}/{total} names after recovery");
    assert_eq!(present, total);
    Ok(())
}
