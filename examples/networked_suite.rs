//! Representatives served across the simulated network: RPC with latency,
//! a partition that costs a quorum, and healing.
//!
//! ```text
//! cargo run --example networked_suite
//! ```

use std::sync::Arc;
use std::time::Duration;

use repdir::core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir::core::{Key, RepId, SuiteError, Value};
use repdir::net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient};
use repdir::replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir::txn::TxnId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Arc::new(Network::new(99));
    net.set_fault_plan(FaultPlan {
        latency: LatencyModel {
            base: Duration::from_millis(2),
            jitter: Duration::from_millis(3),
        },
        ..FaultPlan::default()
    });

    // Three representative servers on nodes 100..103.
    let mut reps = Vec::new();
    let mut servers = Vec::new();
    for i in 0..3u32 {
        let rep = TransactionalRep::new(RepId(i));
        servers.push(serve_rep(
            Arc::clone(&net),
            NodeId(100 + i),
            Arc::clone(&rep),
        ));
        reps.push(rep);
    }
    println!("3 representatives serving over the simulated network (2-5 ms latency)");

    // One client node; per-transaction session clients.
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(1)));
    let run_txn =
        |txn: TxnId,
         body: &mut dyn FnMut(&mut DirSuite<RemoteSessionClient>) -> Result<(), SuiteError>|
         -> Result<(), Box<dyn std::error::Error>> {
            let clients: Vec<RemoteSessionClient> = (0..3u32)
                .map(|i| {
                    let mut c =
                        RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), txn);
                    c.set_timeout(Duration::from_millis(250));
                    c
                })
                .collect();
            for c in &clients {
                // Best effort: a partitioned representative simply misses the
                // transaction and is routed around.
                let _ = c.begin();
            }
            let mut suite = DirSuite::new(
                clients,
                SuiteConfig::symmetric(3, 2, 2)?,
                Box::new(FixedPolicy::new()),
            )?;
            body(&mut suite)?;
            for i in 0..3 {
                let _ = suite.member(i).commit();
            }
            Ok(())
        };

    run_txn(TxnId(1), &mut |suite| {
        suite.insert(&Key::from("config/leader"), &Value::from("node-a"))?;
        suite.insert(&Key::from("config/epoch"), &Value::from("1"))?;
        Ok(())
    })?;
    println!("wrote two keys through remote RPC");

    // Partition the client + two representatives away from the third:
    // quorums of 2 still form, traffic flows.
    net.partition(&[&[NodeId(1), NodeId(100), NodeId(101)], &[NodeId(102)]]);
    run_txn(TxnId(2), &mut |suite| {
        let out = suite.lookup(&Key::from("config/leader"))?;
        println!(
            "minority-partitioned rep C: lookup still answers {:?}",
            out.value
                .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
        );
        suite.update(&Key::from("config/epoch"), &Value::from("2"))?;
        Ok(())
    })?;
    println!("writes succeeded during the partition (C routed around)");

    // Now isolate the client with only ONE representative: no quorum.
    net.partition(&[&[NodeId(1), NodeId(100)], &[NodeId(101), NodeId(102)]]);
    let err = run_txn(TxnId(3), &mut |suite| {
        suite.lookup(&Key::from("config/leader")).map(drop)
    })
    .expect_err("one reachable representative cannot form a read quorum");
    println!("client + 1 rep partition: {err}");

    net.heal();
    run_txn(TxnId(4), &mut |suite| {
        let out = suite.lookup(&Key::from("config/epoch"))?;
        assert_eq!(out.value, Some(Value::from("2")));
        Ok(())
    })?;
    println!("healed: epoch reads back as 2 everywhere it matters");

    let stats = net.stats();
    println!(
        "network totals: {} sent, {} delivered, {} eaten by partitions",
        stats.sent, stats.delivered, stats.partitioned
    );
    for s in servers {
        s.stop();
    }
    Ok(())
}
