//! Metrics dump: what the obs subsystem sees during a short workload.
//!
//! Runs a handful of operations against a 3-2-2 suite, then prints the
//! suite's own registry (per-member message/ping counters, reply-time
//! EWMAs, quorum wave counts, operation spans) followed by the
//! process-global registry the subsystem crates (net, rangelock, storage,
//! txn, replica) record into.
//!
//! ```text
//! cargo run --example obs_dump            # human-readable text
//! cargo run --example obs_dump -- --json  # machine-readable JSON
//! ```

use repdir::core::suite::{DirSuite, SuiteConfig};
use repdir::core::{Key, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");

    let mut dir = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 42)?;
    for name in ["passwd", "motd", "hosts", "group"] {
        dir.insert(
            &Key::from(name),
            &Value::from(format!("inode {name}").as_str()),
        )?;
    }
    dir.update(&Key::from("motd"), &Value::from("inode 99"))?;
    for _ in 0..8 {
        dir.lookup(&Key::from("passwd"))?;
    }
    dir.delete(&Key::from("hosts"))?;

    // Per-suite registry: everything the coordinator recorded. The same
    // numbers back `message_counts()` / `ping_counts()` /
    // `member_reply_ewmas()`.
    let suite_obs = dir.obs();
    // Process-global registry: what the subsystem crates recorded. An
    // in-process suite skips the network, so this mostly shows txn/lock
    // activity here; a networked fixture fills in net.* and rpc.* too.
    let global = repdir::obs::global();

    if json {
        println!(
            "{{\"suite\": {}, \"global\": {}}}",
            suite_obs.render_json(),
            global.render_json()
        );
    } else {
        println!("== suite registry ==\n{}", suite_obs.render_text());
        println!("== global registry ==\n{}", global.render_text());
    }
    Ok(())
}
