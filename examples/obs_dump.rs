//! Metrics dump: what the obs subsystem sees during a short workload.
//!
//! Runs a handful of operations against a 3-2-2 suite — including a brief
//! partition so reads observe stale votes (`repair.stale_votes_observed`)
//! — then an anti-entropy round between two representatives (the global
//! `repair.rounds` / `repair.subtrees_walked` / `repair.keys_pulled` /
//! `repair.bytes` counters and the `repair.round` span), and prints the
//! suite's own registry (per-member message/ping counters, reply-time
//! EWMAs, quorum wave counts, operation spans) followed by the
//! process-global registry the subsystem crates (net, rangelock, storage,
//! txn, replica, repair) record into.
//!
//! ```text
//! cargo run --example obs_dump            # human-readable text
//! cargo run --example obs_dump -- --json  # machine-readable JSON
//! ```

use repdir::core::suite::{DirSuite, SuiteConfig};
use repdir::core::{Key, RepId, Value, Version};
use repdir::repair::Repairer;
use repdir::replica::{LocalRepairPeer, RepTarget, TransactionalRep};
use repdir::txn::TxnId;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");

    let mut dir = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 42)?;
    for name in ["passwd", "motd", "hosts", "group"] {
        dir.insert(
            &Key::from(name),
            &Value::from(format!("inode {name}").as_str()),
        )?;
    }
    dir.update(&Key::from("motd"), &Value::from("inode 99"))?;
    for _ in 0..8 {
        dir.lookup(&Key::from("passwd"))?;
    }
    dir.delete(&Key::from("hosts"))?;
    // Partition member 2 for one write, heal, and read until a quorum
    // straddles it: the stale votes land in `repair.stale_votes_observed`
    // and the queue drains through `take_stale_votes`.
    dir.member(2).set_available(false);
    dir.update(&Key::from("motd"), &Value::from("inode 100"))?;
    dir.member(2).set_available(true);
    for _ in 0..8 {
        dir.lookup(&Key::from("motd"))?;
    }
    let stale = dir.take_stale_votes();

    // One anti-entropy round between two representatives fills in the
    // global `repair.*` counters: a fresh rep pulls the whole directory
    // from a seeded peer through the summary tree.
    let fresh = TransactionalRep::new(RepId(10));
    let seeded = TransactionalRep::new(RepId(11));
    let txn = TxnId(1);
    seeded.begin(txn)?;
    for (i, name) in ["passwd", "motd", "group"].iter().enumerate() {
        seeded.insert(
            txn,
            &Key::from(*name),
            Version::new(i as u64 + 1),
            &Value::from(*name),
        )?;
    }
    seeded.commit(txn)?;
    let repairer = Repairer::new(
        Arc::new(RepTarget::new(Arc::clone(&fresh))),
        vec![Box::new(LocalRepairPeer::new(seeded))],
    );
    let quiesce = repairer.run_until_quiescent(4);

    // Per-suite registry: everything the coordinator recorded. The same
    // numbers back `message_counts()` / `ping_counts()` /
    // `member_reply_ewmas()`.
    let suite_obs = dir.obs();
    // Process-global registry: what the subsystem crates recorded. An
    // in-process suite skips the network, so this mostly shows txn/lock
    // activity here; a networked fixture fills in net.* and rpc.* too.
    let global = repdir::obs::global();

    if json {
        println!(
            "{{\"suite\": {}, \"global\": {}}}",
            suite_obs.render_json(),
            global.render_json()
        );
    } else {
        println!(
            "stale votes drained for read-repair: {} (repair quiesced after {} sweeps)\n",
            stale.len(),
            quiesce.sweeps
        );
        println!("== suite registry ==\n{}", suite_obs.render_text());
        println!("== global registry ==\n{}", global.render_text());
    }
    Ok(())
}
