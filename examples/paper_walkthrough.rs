//! The paper's worked figures, replayed against the real implementation
//! with representative states printed in the figures' style.
//!
//! * Figures 1–3: why per-entry versions alone make deletion ambiguous.
//! * Figures 4–5: how gap versions resolve it.
//! * Figures 10–11: ghosts, real neighbors, and what `DirSuiteDelete`
//!   actually does.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use repdir::core::suite::{DirSuite, FixedPolicy, QuorumPolicy, SuiteConfig};
use repdir::core::{Key, LocalRep, RepId, Value};

fn fixed(order: &[usize]) -> Box<dyn QuorumPolicy + Send> {
    Box::new(FixedPolicy::with_order(order.to_vec()))
}

fn print_states(suite: &DirSuite<LocalRep>) {
    for i in 0..suite.member_count() {
        println!(
            "    {}: {:?}",
            RepId(i as u32).letter(),
            suite.member(i).snapshot()
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SuiteConfig::symmetric(3, 2, 2)?;
    let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
    let mut suite = DirSuite::new(clients, config, fixed(&[0, 1, 2]))?;

    println!("== Figure 1: entries a, c everywhere (via two overlapping writes) ==");
    // Write quorum {A, B}, then {C, A}: every representative ends up with
    // both entries at version 1... the paper's figure has them identical;
    // we emulate by writing twice with rotated quorums.
    suite.insert(&Key::from("a"), &Value::from("A"))?; // on A, B
    suite.insert(&Key::from("c"), &Value::from("C"))?; // on A, B
    suite.set_policy(fixed(&[2, 0, 1]));
    // Copy a and c onto C the way any suite write would: C joins quorums.
    // (Figure 1 just postulates the state; the delete path below shows how
    // copies really propagate.)
    println!("  after inserting a and c with write quorum {{A, B}}:");
    print_states(&suite);

    println!();
    println!("== Figure 2: insert b at representatives A and B ==");
    suite.set_policy(fixed(&[0, 1, 2]));
    suite.insert(&Key::from("b"), &Value::from("B"))?;
    print_states(&suite);
    println!("  note b carries version 1 = (version of the gap it split) + 1");

    println!();
    println!("== the Figure 2/3 question: Lookup(b) via read quorum {{A, C}} ==");
    suite.set_policy(fixed(&[0, 2, 1]));
    let out = suite.lookup(&Key::from("b"))?;
    println!(
        "  A answers 'present, v1'; C answers 'not present, gap v0'.\n  \
         The gap version makes the comparison decidable: present={}, v={}",
        out.present, out.version
    );

    println!();
    println!("== Figures 4-5: delete b via write quorum {{B, C}} ==");
    suite.set_policy(fixed(&[1, 2, 0]));
    let del = suite.delete(&Key::from("b"))?;
    println!(
        "  real predecessor {:?}, real successor {:?}, coalesced gap takes v{}",
        del.predecessor, del.successor, del.gap_version
    );
    println!(
        "  neighbor copies installed into lacking members: {}",
        del.copies_inserted
    );
    print_states(&suite);

    println!();
    println!("== the acid test: Lookup(b) via read quorum {{A, C}} again ==");
    suite.set_policy(fixed(&[0, 2, 1]));
    let out = suite.lookup(&Key::from("b"))?;
    println!(
        "  A still holds the ghost 'b v1'; C answers 'not present, gap v{}'.\n  \
         The HIGHER gap version wins: present={} — no ambiguity.",
        del.gap_version, out.present
    );
    assert!(!out.present);

    println!();
    println!("== Figures 10-11: ghosts and the real successor ==");
    // Rebuild the Figure 10 state through genuine suite operations:
    let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
    let mut suite = DirSuite::new(clients, SuiteConfig::symmetric(3, 2, 2)?, fixed(&[0, 1, 2]))?;
    suite.insert(&Key::from("a"), &Value::from("A"))?; // on A, B
    suite.insert(&Key::from("b"), &Value::from("B"))?; // on A, B
    suite.set_policy(fixed(&[1, 2, 0]));
    suite.delete(&Key::from("b"))?; // coalesce on B, C; ghost of b stays on A
    suite.set_policy(fixed(&[0, 1, 2]));
    suite.insert(&Key::from("bb"), &Value::from("BB"))?; // on A, B
    println!("  constructed state (ghost of b on A; bb missing from C):");
    print_states(&suite);

    println!();
    println!("  deleting a with write quorum {{A, C}}:");
    suite.set_policy(fixed(&[0, 2, 1]));
    let del = suite.delete(&Key::from("a"))?;
    println!(
        "    real successor located: {:?} (the ghost b was skipped: its\n    \
         'present v1' lost to the coalesced gap's higher version)",
        del.successor
    );
    println!(
        "    bb copied into C before coalescing: copies_inserted = {}",
        del.copies_inserted
    );
    println!(
        "    coalescing LOW..bb removed the ghost: ghosts_deleted = {}",
        del.ghosts_deleted
    );
    print_states(&suite);
    assert_eq!(del.successor, Key::from("bb"));
    assert_eq!(del.ghosts_deleted, 1);

    println!();
    println!("walkthrough complete — every assertion matched the paper.");
    Ok(())
}
