//! Quickstart: a replicated directory in a dozen lines.
//!
//! Builds the paper's 3-2-2 suite (three representatives, read and write
//! quorums of two), performs the four directory operations, then
//! demonstrates the availability win: the directory keeps serving reads
//! *and* writes with any single representative down.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use repdir::core::suite::{DirSuite, SuiteConfig};
use repdir::core::{Key, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-representative suite: every read quorum of 2 intersects every
    // write quorum of 2, so reads always see at least one current copy.
    let mut dir = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 42)?;
    println!("created suite {}", dir.config());

    // The four operations of §1.
    dir.insert(&Key::from("passwd"), &Value::from("inode 41"))?;
    dir.insert(&Key::from("motd"), &Value::from("inode 7"))?;

    let found = dir.lookup(&Key::from("passwd"))?;
    println!(
        "lookup(passwd) -> present={} value={:?} (version {})",
        found.present,
        found
            .value
            .as_ref()
            .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned()),
        found.version
    );

    dir.update(&Key::from("motd"), &Value::from("inode 8"))?;
    dir.delete(&Key::from("passwd"))?;
    assert!(!dir.lookup(&Key::from("passwd"))?.present);
    println!("after delete, lookup(passwd) -> absent (gap version carried the answer)");

    // Availability: take each representative down in turn; every operation
    // still succeeds, because the remaining two representatives form both
    // quorums.
    for down in 0..3 {
        dir.member(down).set_available(false);
        let motd = dir.lookup(&Key::from("motd"))?;
        assert!(motd.present);
        dir.update(&Key::from("motd"), &Value::from("still writable"))?;
        println!("with representative {down} down: reads and writes still succeed");
        dir.member(down).set_available(true);
    }

    // Two down exceeds what 3-2-2 tolerates — the error says exactly why.
    dir.member(0).set_available(false);
    dir.member(1).set_available(false);
    let err = dir.lookup(&Key::from("motd")).unwrap_err();
    println!("with two representatives down: {err}");

    Ok(())
}
