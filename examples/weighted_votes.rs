//! Weighted votes and weak representatives (§2): "the sizes of the read and
//! write quorums may be varied to adjust the relative cost and availability
//! of reads and writes … representatives with zero votes may be used as
//! hints."
//!
//! Builds a suite with one 2-vote "strong" representative, two 1-vote
//! peers, and a zero-vote weak mirror; shows how vote weight shapes quorum
//! membership, availability, and where hint reads can come from.
//!
//! ```text
//! cargo run --example weighted_votes
//! ```

use repdir::core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir::core::{Key, LocalRep, RepClient, RepId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Votes: A=2, B=1, C=1, D=0 (weak). Total 4; R=2, W=3.
    //  * A alone is a read quorum (fast local reads at the heavy site).
    //  * Writes need A + one peer, or both peers — never the weak D.
    let config = SuiteConfig::new(vec![2, 1, 1, 0], 2, 3)?;
    let clients: Vec<LocalRep> = (0..4).map(|i| LocalRep::new(RepId(i))).collect();
    let weak = clients[3].clone();
    let mut dir = DirSuite::new(clients, config, Box::new(FixedPolicy::new()))?;
    dir.set_write_through_weak(true);
    println!("suite: votes [2,1,1,0], R=2, W=3 (weak representative D)");

    let out = dir.insert(&Key::from("motd"), &Value::from("hello"))?;
    println!(
        "insert wrote quorum {:?} — A's 2 votes + B's 1 make W=3",
        out.quorum
    );

    let found = dir.lookup(&Key::from("motd"))?;
    println!(
        "lookup read quorum {:?} — A alone satisfies R=2",
        found.quorum
    );

    // The weak representative received the entry as a hint even though it
    // can never vote:
    let hint = weak.lookup(&Key::from("motd"))?;
    println!(
        "weak D holds a hint copy: present={} v{}",
        hint.is_present(),
        hint.version()
    );

    // Availability shape: losing the heavy representative A leaves 2 votes
    // — reads survive, writes do not.
    dir.member(0).set_available(false);
    let read = dir.lookup(&Key::from("motd"));
    let write = dir.update(&Key::from("motd"), &Value::from("updated"));
    println!(
        "with A down: read {} / write {}",
        if read.is_ok() { "OK" } else { "unavailable" },
        if write.is_ok() { "OK" } else { "unavailable" },
    );
    assert!(read.is_ok());
    assert!(write.is_err());

    // Losing a light representative instead leaves 3 votes: all good.
    dir.member(0).set_available(true);
    dir.member(1).set_available(false);
    dir.update(&Key::from("motd"), &Value::from("updated"))?;
    println!("with only B down: reads and writes both fine (A+C = 3 votes)");

    // Analytic view of the same trade-off.
    use repdir::workload::weighted_availability;
    let votes = [2u32, 1, 1, 0];
    for p in [0.9, 0.99] {
        println!(
            "p={p}: read availability {:.4}, write availability {:.4}",
            weighted_availability(&votes, 2, p),
            weighted_availability(&votes, 3, p),
        );
    }
    Ok(())
}
