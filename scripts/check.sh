#!/usr/bin/env bash
# Offline verification gate for the repdir workspace.
#
# 1. Greps every Cargo.toml for dependencies that are not in-workspace
#    `repdir-*` path crates (the zero-external-dependency policy, DESIGN.md §6).
# 2. Builds the whole workspace offline (release, all targets).
# 3. Runs the full test suite offline.
# 4. Runs the suite_latency bench in quick mode, which fails unless quorum
#    fan-out beats the sequential baseline by >= 1.5x median latency AND the
#    obs-instrumented build (timing armed) stays within 5% of the disarmed
#    baseline.
# 5. Runs the latency_policy bench in quick mode, which fails unless the
#    EWMA-driven LatencyPolicy reads from the fast members only and beats
#    RandomPolicy by >= 2x median on a skewed fabric.
# 6. Runs the scan_bench in quick mode, which fails unless the session-quorum
#    + batched-envelope scan beats the per-hop baseline by >= 2x median at
#    N=64 entries, R=2 with zero re-validations on the failure-free fabric.
#
# Exits non-zero on the first violation or failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> dependency policy: only repdir-* path crates allowed"
violations=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Examine dependency-table bodies only: lines "name = ..." or "name.workspace = ..."
    # inside [dependencies] / [dev-dependencies] / [build-dependencies] /
    # [workspace.dependencies] sections.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) ; next }
        in_deps && /^[a-zA-Z0-9_-]+(\.workspace)?[[:space:]]*=/ {
            name = $1; sub(/\.workspace$/, "", name)
            if (name !~ /^repdir-/) print FILENAME ": " $0
        }
    ' "$manifest" || true)
    if [ -n "$bad" ]; then
        echo "POLICY VIOLATION: non-repdir dependency in $manifest:"
        echo "$bad"
        violations=1
    fi
done
if [ "$violations" -ne 0 ]; then
    echo "FAIL: external dependencies found (see above)"
    exit 1
fi
echo "    ok: no external dependencies declared"

echo "==> cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo build --offline --examples"
cargo build --offline --examples

echo "==> suite_latency --quick --check (fan-out >= 1.5x; obs overhead <= 5%)"
cargo run --release --offline -p repdir-bench --bin suite_latency -- --quick --check

echo "==> latency_policy --quick --check (EWMA policy must avoid slow members, >= 2x)"
cargo run --release --offline -p repdir-bench --bin latency_policy -- --quick --check

echo "==> scan_bench --quick --check (session + batched scan >= 2x per-hop at N=64, R=2)"
cargo run --release --offline -p repdir-bench --bin scan_bench -- --quick --check

echo "ALL CHECKS PASSED"
