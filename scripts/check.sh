#!/usr/bin/env bash
# Offline verification gate for the repdir workspace.
#
# 1. Greps every Cargo.toml for dependencies that are not in-workspace
#    `repdir-*` path crates (the zero-external-dependency policy, DESIGN.md §6).
# 2. Builds the whole workspace offline (release, all targets).
# 3. Runs the full test suite offline.
# 4. Runs the suite_latency bench in quick mode, which fails unless quorum
#    fan-out beats the sequential baseline by >= 1.5x median latency AND the
#    obs-instrumented build (timing armed) stays within 5% of the disarmed
#    baseline.
# 5. Runs the latency_policy bench in quick mode, which fails unless the
#    EWMA-driven LatencyPolicy reads from the fast members only and beats
#    RandomPolicy by >= 2x median on a skewed fabric.
# 6. Runs the scan_bench in quick mode, which fails unless the session-quorum
#    + batched-envelope scan beats the per-hop baseline by >= 2x median at
#    N=64 entries, R=2 with zero re-validations on the failure-free fabric.
# 7. Runs the ingest_bench in quick mode, which fails unless bulk insert_many
#    beats the per-key baseline by >= 2x median AND >= 2x fewer fabric
#    messages for a 64-key ingest at R=2/W=2, zero re-validations.
# 8. Runs the hedge_bench in quick mode, which fails unless adaptive wave
#    provisioning + hedged RPCs beat the minimal-prefix baseline by >= 2x
#    median lookup latency on a fabric with one flaky + one slow member,
#    spending at most the 2x over-provision cap in extra pings.
# 9. Runs the repair_bench in quick mode with --driver, which fails unless
#    summary-tree anti-entropy converges a member that missed ~5% of the
#    keys with >= 2x fewer fabric messages than a naive full-directory
#    copy, AND the stale-vote-fed RepairDriver's bucket-targeted pulls
#    converge the same member with >= 2x fewer messages than the summary
#    sweep itself.
# 10. Runs the snapshot_bench in quick mode, which fails unless streamed
#    snapshot catch-up converges a far-diverged member (~35% of buckets in
#    quick mode) byte-identically with >= 2x fewer fabric messages than
#    256 per-bucket pulls.
# 11. cargo fmt --check and cargo clippy -D warnings keep the tree formatted
#    and lint-clean.
#
# Each gate prints its wall-clock duration so a slow regression is
# attributable to the gate that grew. Exits non-zero on the first violation
# or failure.

set -euo pipefail
cd "$(dirname "$0")/.."

gate_start=0
gate() {
    gate_start=$SECONDS
    echo "==> $*"
}
gate_done() {
    echo "    [gate took $((SECONDS - gate_start))s]"
}

gate "dependency policy: only repdir-* path crates allowed"
violations=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Examine dependency-table bodies only: lines "name = ..." or "name.workspace = ..."
    # inside [dependencies] / [dev-dependencies] / [build-dependencies] /
    # [workspace.dependencies] sections.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) ; next }
        in_deps && /^[a-zA-Z0-9_-]+(\.workspace)?[[:space:]]*=/ {
            name = $1; sub(/\.workspace$/, "", name)
            if (name !~ /^repdir-/) print FILENAME ": " $0
        }
    ' "$manifest" || true)
    if [ -n "$bad" ]; then
        echo "POLICY VIOLATION: non-repdir dependency in $manifest:"
        echo "$bad"
        violations=1
    fi
done
if [ "$violations" -ne 0 ]; then
    echo "FAIL: external dependencies found (see above)"
    exit 1
fi
echo "    ok: no external dependencies declared"
gate_done

gate "cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets
gate_done

gate "cargo test -q --offline --workspace"
cargo test -q --offline --workspace
gate_done

gate "cargo build --offline --examples"
cargo build --offline --examples
gate_done

gate "suite_latency --quick --check (fan-out >= 1.5x; obs overhead <= 5%)"
cargo run --release --offline -p repdir-bench --bin suite_latency -- --quick --check
gate_done

gate "latency_policy --quick --check (EWMA policy must avoid slow members, >= 2x)"
cargo run --release --offline -p repdir-bench --bin latency_policy -- --quick --check
gate_done

gate "scan_bench --quick --check (session + batched scan >= 2x per-hop at N=64, R=2)"
cargo run --release --offline -p repdir-bench --bin scan_bench -- --quick --check
gate_done

gate "ingest_bench --quick --check (bulk insert >= 2x time and >= 2x fewer messages at N=64)"
cargo run --release --offline -p repdir-bench --bin ingest_bench -- --quick --check
gate_done

gate "hedge_bench --quick --check (adaptive waves + hedging >= 2x on a flaky fabric, pings <= 2x)"
cargo run --release --offline -p repdir-bench --bin hedge_bench -- --quick --check
gate_done

gate "repair_bench --quick --check --driver (anti-entropy >= 2x vs full copy; vote-targeted pulls >= 2x vs sweeping)"
cargo run --release --offline -p repdir-bench --bin repair_bench -- --quick --check --driver
gate_done

gate "snapshot_bench --quick --check (streamed catch-up >= 2x fewer messages vs 256 pulls)"
cargo run --release --offline -p repdir-bench --bin snapshot_bench -- --quick --check
gate_done

gate "cargo fmt --check"
cargo fmt --check
gate_done

gate "cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings
gate_done

echo "ALL CHECKS PASSED"
